//! Runtime health layer: task-lifecycle flight recorder, latency
//! attribution, and a straggler/hang watchdog.
//!
//! The executor emits a [`LifecycleEvent`] at every task transition
//! (submit → ready → started → dispatched → finished/retried/failed,
//! plus run start/end) through the [`hf_core::ExecutorObserver`]
//! `on_lifecycle` hook. The [`FlightRecorder`] is the observer that
//! captures them: the hot path is one enabled check plus a lock-free
//! [`EventRing`] push, so recording never blocks a worker, and a
//! *disabled* recorder costs a single relaxed atomic load (the same
//! `is_active` fast path the span tracer uses — with every observer
//! inactive the executor never even constructs the event).
//!
//! Everything stateful happens off the hot path in
//! [`FlightRecorder::pump`], which drains the ring and folds events into
//! per-run flight logs ("black boxes"), latency-attribution histograms
//! (`queue delay = started − ready`, `exec = finished − started`,
//! `run latency = run_end − run_start`), and per-task execution-time
//! EWMAs. The [`Watchdog`] runs `pump` on its own monitor thread, watches
//! armed runs for no-progress windows and stragglers, and escalates
//! structured [`HealthEvent`]s (warn → stall → hang), optionally tripping
//! cooperative cancellation at a deadline.

use crate::metrics::{duration_bounds_nanos, Histogram, MetricsRegistry};
use hf_core::{
    lifecycle_now_ns, CancelHandle, ExecutorObserver, LifecycleEvent, LifecyclePhase, RunFuture,
    TaskMeta,
};
use hf_sync::EventRing;
use parking_lot::Mutex;
use serde_json::{Map, Value};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default capacity of the lock-free event ring (events between pumps
/// beyond this are dropped and counted, never blocked on).
const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// Default cap on events kept per run in the flight log. Timing and
/// counters keep updating past the cap; only the verbatim event list is
/// truncated (with a drop count).
const DEFAULT_PER_RUN_CAP: usize = 8 * 1024;

/// Completed runs retained for `/runs` summaries and dumps.
const DEFAULT_KEEP_COMPLETED: usize = 16;

/// EWMA smoothing for per-task execution-time estimates.
const EWMA_ALPHA: f64 = 0.25;

/// Per-task timing state inside one run's flight log.
#[derive(Debug, Default, Clone)]
struct TaskTiming {
    name: Option<Arc<str>>,
    ready_ns: Option<u64>,
    started_ns: Option<u64>,
    finished_ns: Option<u64>,
    retries: u32,
    failures: u32,
}

/// One run's flight log: the bounded event list plus derived state.
#[derive(Debug)]
struct RunFlight {
    run_id: u64,
    graph: Arc<str>,
    /// Tenant the run is attributed to, captured from the first
    /// lifecycle event that carries one (fleet submissions only).
    tenant: Option<Arc<str>>,
    events: Vec<LifecycleEvent>,
    events_applied: u64,
    events_dropped: u64,
    started_ns: u64,
    ended_ns: Option<u64>,
    ok: Option<bool>,
    detail: Option<Arc<str>>,
    failovers: u32,
    tasks: HashMap<u32, TaskTiming>,
    /// Admission time of in-flight streaming epochs (`EpochStart` seen,
    /// `EpochEnd` pending), keyed by epoch index.
    epoch_started: HashMap<u64, u64>,
    /// Streaming epochs completed in this run.
    epochs_completed: u64,
}

impl RunFlight {
    fn new(run_id: u64, graph: Arc<str>, t_ns: u64) -> Self {
        Self {
            run_id,
            graph,
            tenant: None,
            events: Vec::new(),
            events_applied: 0,
            events_dropped: 0,
            started_ns: t_ns,
            ended_ns: None,
            ok: None,
            detail: None,
            failovers: 0,
            tasks: HashMap::new(),
            epoch_started: HashMap::new(),
            epochs_completed: 0,
        }
    }

    fn done(&self) -> bool {
        self.ended_ns.is_some()
    }

    fn last_event_ns(&self) -> u64 {
        self.events.last().map(|e| e.t_ns).unwrap_or(self.started_ns)
    }
}

/// Point-in-time progress of one run, for monitors: how many events have
/// been applied, when the last one landed, and which tasks are in flight.
#[derive(Debug, Clone)]
pub struct RunProgress {
    /// Lifecycle events folded into the run so far.
    pub events: u64,
    /// Timestamp (lifecycle clock, ns) of the latest event.
    pub last_event_ns: u64,
    /// True once the run's `RunEnd` event has been applied.
    pub done: bool,
    /// Tasks with a `Started` but no terminal event yet:
    /// `(task id, name, started_ns)`.
    pub inflight: Vec<(u32, Arc<str>, u64)>,
}

/// Compact description of one recorded run, for `/runs` and JSON dumps.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Process-unique submission id.
    pub run_id: u64,
    /// Graph name.
    pub graph: String,
    /// Run start (lifecycle clock, ns).
    pub started_ns: u64,
    /// Run end, when finished.
    pub ended_ns: Option<u64>,
    /// Result, when finished.
    pub ok: Option<bool>,
    /// Error detail for failed runs.
    pub detail: Option<String>,
    /// Lifecycle events applied to this run.
    pub events: u64,
    /// Distinct tasks observed.
    pub tasks: usize,
    /// Task retries observed.
    pub retries: u64,
    /// Task failures observed (terminal and retried alike).
    pub failures: u64,
    /// Whole-run failovers (placement replays after device loss).
    pub failovers: u64,
    /// Tenant the run is attributed to (fleet submissions only).
    pub tenant: Option<String>,
}

/// Per-tenant latency attribution, aggregated across that tenant's runs.
#[derive(Debug, Clone)]
pub struct TenantLatency {
    /// Tenant name.
    pub tenant: String,
    /// Completed runs attributed to the tenant.
    pub runs: u64,
    /// Completed runs that ended in failure or cancellation.
    pub failed: u64,
    /// Ready-to-started queue delay per task execution (ns).
    pub queue_delay: Histogram,
    /// Started-to-finished execution time per task (ns).
    pub exec: Histogram,
    /// Submit-to-completion latency per run (ns).
    pub run_latency: Histogram,
}

/// Mutable per-tenant fold state inside `FlightState`.
#[derive(Debug)]
struct TenantHists {
    runs: u64,
    failed: u64,
    queue_delay: Histogram,
    exec: Histogram,
    run_latency: Histogram,
}

impl TenantHists {
    fn new() -> Self {
        Self {
            runs: 0,
            failed: 0,
            queue_delay: Histogram::new(duration_bounds_nanos()),
            exec: Histogram::new(duration_bounds_nanos()),
            run_latency: Histogram::new(duration_bounds_nanos()),
        }
    }
}

/// Aggregated latency-attribution and EWMA state.
struct FlightState {
    runs: Vec<RunFlight>,
    ewma: HashMap<(Arc<str>, u32), f64>,
    queue_delay: Histogram,
    exec: Histogram,
    run_latency: Histogram,
    /// Admission-to-completion latency of streaming epochs
    /// (`epoch_end − epoch_start`, ns).
    epoch_latency: Histogram,
    /// Per-tenant attribution, keyed by tenant name. Populated only by
    /// runs whose events carry a tenant (fleet submissions); direct
    /// submissions land solely in the unlabeled aggregates above.
    tenants: HashMap<Arc<str>, TenantHists>,
}

impl FlightState {
    fn new() -> Self {
        Self {
            runs: Vec::new(),
            ewma: HashMap::new(),
            queue_delay: Histogram::new(duration_bounds_nanos()),
            exec: Histogram::new(duration_bounds_nanos()),
            run_latency: Histogram::new(duration_bounds_nanos()),
            epoch_latency: Histogram::new(duration_bounds_nanos()),
            tenants: HashMap::new(),
        }
    }

    fn tenant_mut(&mut self, tenant: &Arc<str>) -> &mut TenantHists {
        self.tenants
            .entry(Arc::clone(tenant))
            .or_insert_with(TenantHists::new)
    }

    fn run_mut(&mut self, ev: &LifecycleEvent) -> &mut RunFlight {
        if let Some(i) = self.runs.iter().position(|r| r.run_id == ev.run_id) {
            return &mut self.runs[i];
        }
        self.runs
            .push(RunFlight::new(ev.run_id, Arc::clone(&ev.graph), ev.t_ns));
        self.runs.last_mut().expect("just pushed")
    }
}

/// Bounded, structured "black box" for task execution.
///
/// Install on an executor with
/// `Executor::builder(..).observer(recorder.clone()).build()`; call
/// [`FlightRecorder::pump`] (or let a [`Watchdog`] do it) to fold the
/// raw ring into per-run flight logs and latency histograms. On a failed
/// or cancelled run the recorder can auto-write the run's black box as a
/// JSON artifact ([`FlightRecorder::set_blackbox_dir`]).
pub struct FlightRecorder {
    enabled: AtomicBool,
    ring: EventRing<LifecycleEvent>,
    recorded: AtomicU64,
    state: Mutex<FlightState>,
    blackbox_dir: Mutex<Option<PathBuf>>,
    per_run_cap: usize,
    keep_completed: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// An enabled recorder with default capacities.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled recorder with the given ring capacity.
    pub fn with_capacity(ring_capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            ring: EventRing::new(ring_capacity),
            recorded: AtomicU64::new(0),
            state: Mutex::new(FlightState::new()),
            blackbox_dir: Mutex::new(None),
            per_run_cap: DEFAULT_PER_RUN_CAP,
            keep_completed: DEFAULT_KEEP_COMPLETED,
        }
    }

    /// A recorder in shared form, ready to hand to
    /// `ExecutorBuilder::observer`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Enables or disables recording. Disabled, the recorder reports
    /// inactive through `is_active`, so an executor with no other active
    /// observer skips lifecycle emission entirely.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// True when recording.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Directory where failed/cancelled runs auto-write their black-box
    /// JSON on pump (`None` disables; files are named
    /// `blackbox_run<id>.json`).
    pub fn set_blackbox_dir(&self, dir: Option<PathBuf>) {
        *self.blackbox_dir.lock() = dir;
    }

    /// Lifecycle events accepted by the hot path so far.
    pub fn events_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events lost to ring overflow (pump more often, or grow the ring).
    pub fn events_dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Drains the ring and folds events into per-run flight logs,
    /// latency histograms, and execution-time EWMAs. Returns the number
    /// of events applied. Cheap when idle; call from a monitor thread,
    /// on scrape, or after `wait()`.
    pub fn pump(&self) -> usize {
        let mut drained = Vec::new();
        self.ring.drain(|ev| drained.push(ev));
        if drained.is_empty() {
            return 0;
        }
        let n = drained.len();
        let mut st = self.state.lock();
        let mut failed_runs = Vec::new();
        for ev in drained {
            let graph = Arc::clone(&ev.graph);
            let tenant = ev.tenant.clone();
            // Derived observations, applied after the run borrow ends.
            let mut queue_obs = None;
            let mut exec_obs = None;
            let mut run_obs = None;
            let mut epoch_obs = None;
            let mut ended = false;
            {
                let cap = self.per_run_cap;
                let run = st.run_mut(&ev);
                run.events_applied += 1;
                if run.tenant.is_none() {
                    if let Some(t) = &tenant {
                        run.tenant = Some(Arc::clone(t));
                    }
                }
                match ev.phase {
                    LifecyclePhase::RunStart => {
                        run.started_ns = ev.t_ns;
                    }
                    LifecyclePhase::Ready => {
                        if let Some(t) = ev.task {
                            let tt = run.tasks.entry(t).or_default();
                            tt.name = Some(Arc::clone(&ev.name));
                            tt.ready_ns = Some(ev.t_ns);
                            tt.started_ns = None;
                        }
                    }
                    LifecyclePhase::Started | LifecyclePhase::Dispatched => {
                        if let Some(t) = ev.task {
                            let tt = run.tasks.entry(t).or_default();
                            tt.name = Some(Arc::clone(&ev.name));
                            // A chain member gets Dispatched without its
                            // own Started; keep the earliest begin time.
                            if tt.started_ns.is_none() {
                                tt.started_ns = Some(ev.t_ns);
                            }
                        }
                    }
                    LifecyclePhase::Finished => {
                        if let Some(t) = ev.task {
                            let tt = run.tasks.entry(t).or_default();
                            tt.finished_ns = Some(ev.t_ns);
                            let started = tt.started_ns.take();
                            let ready = tt.ready_ns.take();
                            if ev.ok {
                                if let Some(s) = started {
                                    exec_obs =
                                        Some((t, ev.t_ns.saturating_sub(s) as f64));
                                    if let Some(r) = ready {
                                        queue_obs =
                                            Some(s.saturating_sub(r) as f64);
                                    }
                                }
                            }
                        }
                    }
                    LifecyclePhase::Retried => {
                        if let Some(t) = ev.task {
                            let tt = run.tasks.entry(t).or_default();
                            tt.retries += 1;
                            tt.failures += 1;
                            tt.started_ns = None;
                            tt.ready_ns = None;
                        }
                    }
                    LifecyclePhase::Failed => {
                        if let Some(t) = ev.task {
                            let tt = run.tasks.entry(t).or_default();
                            tt.failures += 1;
                            tt.started_ns = None;
                            tt.ready_ns = None;
                        }
                    }
                    LifecyclePhase::Failover => {
                        run.failovers += 1;
                    }
                    LifecyclePhase::EpochStart => {
                        if let Some(e) = ev.epoch {
                            run.epoch_started.insert(e, ev.t_ns);
                        }
                    }
                    LifecyclePhase::EpochEnd => {
                        if let Some(e) = ev.epoch {
                            run.epochs_completed += 1;
                            if let Some(s) = run.epoch_started.remove(&e) {
                                epoch_obs =
                                    Some(ev.t_ns.saturating_sub(s) as f64);
                            }
                        }
                    }
                    LifecyclePhase::RunEnd => {
                        run.ended_ns = Some(ev.t_ns);
                        run.ok = Some(ev.ok);
                        run.detail = ev.detail.clone();
                        run_obs = Some((
                            ev.t_ns.saturating_sub(run.started_ns) as f64,
                            ev.ok,
                        ));
                        if !ev.ok {
                            failed_runs.push(ev.run_id);
                        }
                        ended = true;
                    }
                    // `LifecyclePhase` is non_exhaustive: future phases
                    // still land in the event log below.
                    _ => {}
                }
                // Keep the verbatim event (bounded per run) — terminal
                // RunEnd included, so a pumped black box always carries
                // the run's outcome.
                if run.events.len() < cap {
                    run.events.push(ev);
                } else {
                    run.events_dropped += 1;
                }
            }
            if let Some(q) = queue_obs {
                st.queue_delay.observe(q);
                if let Some(t) = &tenant {
                    st.tenant_mut(t).queue_delay.observe(q);
                }
            }
            if let Some((task, e)) = exec_obs {
                st.exec.observe(e);
                if let Some(t) = &tenant {
                    st.tenant_mut(t).exec.observe(e);
                }
                let ewma = st.ewma.entry((graph, task)).or_insert(e);
                *ewma = (1.0 - EWMA_ALPHA) * *ewma + EWMA_ALPHA * e;
            }
            if let Some((l, run_ok)) = run_obs {
                st.run_latency.observe(l);
                if let Some(t) = &tenant {
                    let th = st.tenant_mut(t);
                    th.run_latency.observe(l);
                    th.runs += 1;
                    if !run_ok {
                        th.failed += 1;
                    }
                }
            }
            if let Some(l) = epoch_obs {
                st.epoch_latency.observe(l);
            }
            if ended {
                // Trim completed runs beyond the retention window
                // (active runs are never evicted).
                let completed =
                    st.runs.iter().filter(|r| r.done()).count();
                let mut excess = completed.saturating_sub(self.keep_completed);
                while excess > 0 {
                    if let Some(i) = st.runs.iter().position(|r| r.done()) {
                        st.runs.remove(i);
                    }
                    excess -= 1;
                }
            }
        }
        // Auto-dump black boxes for runs that just failed/cancelled.
        let dir = self.blackbox_dir.lock().clone();
        if let Some(dir) = dir {
            for run_id in failed_runs {
                if let Some(v) = Self::run_json_locked(&st, run_id) {
                    let path = dir.join(format!("blackbox_run{run_id}.json"));
                    let _ = std::fs::create_dir_all(&dir);
                    let _ = std::fs::write(
                        &path,
                        serde_json::to_string_pretty(&v).expect("infallible"),
                    );
                }
            }
        }
        n
    }

    /// Current progress of one run (after a pump), for monitors.
    pub fn run_progress(&self, run_id: u64) -> Option<RunProgress> {
        let st = self.state.lock();
        let run = st.runs.iter().find(|r| r.run_id == run_id)?;
        let inflight = run
            .tasks
            .iter()
            .filter_map(|(&t, tt)| {
                let s = tt.started_ns?;
                if tt.finished_ns.is_some() {
                    return None;
                }
                Some((t, tt.name.clone().unwrap_or_else(|| Arc::from("")), s))
            })
            .collect();
        Some(RunProgress {
            events: run.events_applied,
            last_event_ns: run.last_event_ns(),
            done: run.done(),
            inflight,
        })
    }

    /// EWMA execution-time estimate (ns) for `task` of `graph`, learned
    /// from finished executions. The watchdog compares in-flight runtimes
    /// against this to flag stragglers.
    pub fn exec_estimate(&self, graph: &str, task: u32) -> Option<f64> {
        let st = self.state.lock();
        st.ewma
            .iter()
            .find(|((g, t), _)| g.as_ref() == graph && *t == task)
            .map(|(_, &v)| v)
    }

    /// Summaries of all retained runs, newest last.
    pub fn summaries(&self) -> Vec<RunSummary> {
        let st = self.state.lock();
        st.runs
            .iter()
            .map(|r| RunSummary {
                run_id: r.run_id,
                graph: r.graph.to_string(),
                started_ns: r.started_ns,
                ended_ns: r.ended_ns,
                ok: r.ok,
                detail: r.detail.as_ref().map(|d| d.to_string()),
                events: r.events_applied,
                tasks: r.tasks.len(),
                retries: r.tasks.values().map(|t| t.retries as u64).sum(),
                failures: r.tasks.values().map(|t| t.failures as u64).sum(),
                failovers: r.failovers as u64,
                tenant: r.tenant.as_ref().map(|t| t.to_string()),
            })
            .collect()
    }

    /// Per-tenant latency attribution, sorted by tenant name. Empty
    /// unless runs entered through a fleet (direct submissions carry no
    /// tenant and fold only into the unlabeled aggregates).
    pub fn tenant_latencies(&self) -> Vec<TenantLatency> {
        let st = self.state.lock();
        let mut out: Vec<TenantLatency> = st
            .tenants
            .iter()
            .map(|(name, th)| TenantLatency {
                tenant: name.to_string(),
                runs: th.runs,
                failed: th.failed,
                queue_delay: th.queue_delay.clone(),
                exec: th.exec.clone(),
                run_latency: th.run_latency.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// Per-tenant attribution as one JSON document (for `/tenants`):
    /// run counts plus p50/p99 of each latency histogram.
    pub fn tenants_json(&self) -> Value {
        let tenants = self.tenant_latencies();
        let mut arr = Vec::with_capacity(tenants.len());
        for t in tenants {
            let mut o = Map::new();
            o.insert("tenant".into(), Value::Str(t.tenant));
            o.insert("runs".into(), Value::UInt(t.runs));
            o.insert("failed".into(), Value::UInt(t.failed));
            for (key, h) in [
                ("queue_delay_ns", &t.queue_delay),
                ("exec_ns", &t.exec),
                ("run_latency_ns", &t.run_latency),
            ] {
                let mut l = Map::new();
                l.insert("count".into(), Value::UInt(h.count));
                l.insert("p50".into(), Value::Float(h.quantile(0.5)));
                l.insert("p99".into(), Value::Float(h.quantile(0.99)));
                o.insert(key.into(), Value::Object(l));
            }
            arr.push(Value::Object(o));
        }
        let mut o = Map::new();
        o.insert("schema".into(), Value::Str("hf-tenants-v1".into()));
        o.insert("tenants".into(), Value::Array(arr));
        Value::Object(o)
    }

    /// The attribution histograms (queue delay, exec, run latency).
    pub fn latency_histograms(&self) -> (Histogram, Histogram, Histogram) {
        let st = self.state.lock();
        (
            st.queue_delay.clone(),
            st.exec.clone(),
            st.run_latency.clone(),
        )
    }

    /// The streaming epoch latency histogram (admission-to-completion per
    /// epoch, ns). Populated only by sessions opened with
    /// `Executor::run_stream`; sequential runs never emit epoch events.
    pub fn epoch_latency_histogram(&self) -> Histogram {
        self.state.lock().epoch_latency.clone()
    }

    /// Publishes the recorder's aggregates into a [`MetricsRegistry`]:
    /// `hf_task_queue_delay_nanos`, `hf_task_exec_nanos`,
    /// `hf_run_latency_nanos` histograms plus recorder counters.
    pub fn export_into(&self, reg: &MetricsRegistry) {
        let (qd, ex, rl) = self.latency_histograms();
        reg.set_histogram(
            "hf_task_queue_delay_nanos",
            "Ready-to-started queue delay per task execution (ns)",
            &[],
            qd,
        );
        reg.set_histogram(
            "hf_task_exec_nanos",
            "Started-to-finished execution time per task (ns; device time included for GPU tasks)",
            &[],
            ex,
        );
        reg.set_histogram(
            "hf_run_latency_nanos",
            "Submit-to-completion latency per run (ns)",
            &[],
            rl,
        );
        reg.set_histogram(
            "hf_epoch_latency_nanos",
            "Admission-to-completion latency per streaming epoch (ns)",
            &[],
            self.epoch_latency_histogram(),
        );
        // Per-tenant labeled series ride alongside the unlabeled
        // aggregates above (which keep folding every run, tenanted or
        // not, so existing dashboards stay stable).
        for t in self.tenant_latencies() {
            let labels = &[("tenant", t.tenant.as_str())];
            reg.set_histogram(
                "hf_task_queue_delay_nanos",
                "Ready-to-started queue delay per task execution (ns)",
                labels,
                t.queue_delay,
            );
            reg.set_histogram(
                "hf_task_exec_nanos",
                "Started-to-finished execution time per task (ns; device time included for GPU tasks)",
                labels,
                t.exec,
            );
            reg.set_histogram(
                "hf_run_latency_nanos",
                "Submit-to-completion latency per run (ns)",
                labels,
                t.run_latency,
            );
            reg.set_counter(
                "hf_tenant_runs_total",
                "Completed runs attributed to the tenant",
                labels,
                t.runs,
            );
            reg.set_counter(
                "hf_tenant_runs_failed_total",
                "Completed runs attributed to the tenant that failed or were cancelled",
                labels,
                t.failed,
            );
        }
        reg.set_counter(
            "hf_flight_events_recorded_total",
            "Lifecycle events accepted by the flight recorder",
            &[],
            self.events_recorded(),
        );
        reg.set_counter(
            "hf_flight_events_dropped_total",
            "Lifecycle events lost to ring overflow",
            &[],
            self.events_dropped(),
        );
    }

    fn event_json(ev: &LifecycleEvent) -> Value {
        let mut o = Map::new();
        o.insert("t_ns".into(), Value::UInt(ev.t_ns));
        o.insert("phase".into(), Value::Str(ev.phase.name().to_string()));
        o.insert("run_id".into(), Value::UInt(ev.run_id));
        o.insert("graph".into(), Value::Str(ev.graph.to_string()));
        if let Some(t) = ev.task {
            o.insert("task".into(), Value::UInt(t as u64));
        }
        o.insert("name".into(), Value::Str(ev.name.to_string()));
        if let Some(k) = ev.kind {
            o.insert("kind".into(), Value::Str(k.to_string()));
        }
        if let Some(d) = ev.device {
            o.insert("device".into(), Value::UInt(d as u64));
        }
        if let Some(w) = ev.worker {
            o.insert("worker".into(), Value::UInt(w as u64));
        }
        if let Some(c) = ev.chain {
            o.insert("chain".into(), Value::UInt(c as u64));
        }
        if let Some(e) = ev.epoch {
            o.insert("epoch".into(), Value::UInt(e));
        }
        if ev.bytes > 0 {
            o.insert("bytes".into(), Value::UInt(ev.bytes));
        }
        o.insert("ok".into(), Value::Bool(ev.ok));
        if let Some(d) = &ev.detail {
            o.insert("detail".into(), Value::Str(d.to_string()));
        }
        if let Some(t) = &ev.tenant {
            o.insert("tenant".into(), Value::Str(t.to_string()));
        }
        Value::Object(o)
    }

    fn run_json_locked(st: &FlightState, run_id: u64) -> Option<Value> {
        let run = st.runs.iter().find(|r| r.run_id == run_id)?;
        let mut o = Map::new();
        o.insert("run_id".into(), Value::UInt(run.run_id));
        o.insert("graph".into(), Value::Str(run.graph.to_string()));
        if let Some(t) = &run.tenant {
            o.insert("tenant".into(), Value::Str(t.to_string()));
        }
        o.insert("started_ns".into(), Value::UInt(run.started_ns));
        match run.ended_ns {
            Some(e) => o.insert("ended_ns".into(), Value::UInt(e)),
            None => o.insert("ended_ns".into(), Value::Null),
        };
        match run.ok {
            Some(ok) => o.insert("ok".into(), Value::Bool(ok)),
            None => o.insert("ok".into(), Value::Null),
        };
        if let Some(d) = &run.detail {
            o.insert("detail".into(), Value::Str(d.to_string()));
        }
        if run.epochs_completed > 0 {
            o.insert("epochs_completed".into(), Value::UInt(run.epochs_completed));
        }
        o.insert("events_applied".into(), Value::UInt(run.events_applied));
        o.insert("events_dropped".into(), Value::UInt(run.events_dropped));
        o.insert(
            "events".into(),
            Value::Array(run.events.iter().map(Self::event_json).collect()),
        );
        Some(Value::Object(o))
    }

    /// One run's flight log as JSON (its black box), if retained.
    pub fn dump_run_json(&self, run_id: u64) -> Option<Value> {
        let st = self.state.lock();
        Self::run_json_locked(&st, run_id)
    }

    /// Every retained run's flight log as one JSON document.
    pub fn dump_json(&self) -> Value {
        let st = self.state.lock();
        let ids: Vec<u64> = st.runs.iter().map(|r| r.run_id).collect();
        let mut o = Map::new();
        o.insert("schema".into(), Value::Str("hf-flight-recorder-v1".into()));
        o.insert(
            "events_recorded".into(),
            Value::UInt(self.recorded.load(Ordering::Relaxed)),
        );
        o.insert("events_dropped".into(), Value::UInt(self.ring.dropped()));
        o.insert(
            "runs".into(),
            Value::Array(
                ids.iter()
                    .filter_map(|&id| Self::run_json_locked(&st, id))
                    .collect(),
            ),
        );
        Value::Object(o)
    }

    /// Writes the full flight dump to `path` as pretty JSON.
    pub fn write_blackbox(&self, path: &Path) -> std::io::Result<()> {
        self.pump();
        let v = self.dump_json();
        std::fs::write(path, serde_json::to_string_pretty(&v).expect("infallible"))
    }
}

impl ExecutorObserver for FlightRecorder {
    fn on_task_begin(&self, _meta: &TaskMeta<'_>) {}
    fn on_task_end(&self, _meta: &TaskMeta<'_>) {}

    fn is_active(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn on_lifecycle(&self, event: &LifecycleEvent) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        // Push never blocks; overflow is counted by the ring.
        let _ = self.ring.push(event.clone());
    }
}

/// Watchdog severity ladder, worst first when comparing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthVerdict {
    /// Armed runs are progressing (or none are armed).
    Healthy,
    /// A run has gone quiet longer than `warn_after`.
    Warn,
    /// A run has gone quiet longer than `stall_after`.
    Stall,
    /// A run has gone quiet longer than `hang_after`.
    Hang,
}

impl HealthVerdict {
    /// Stable lowercase name (`healthy`/`warn`/`stall`/`hang`).
    pub fn name(self) -> &'static str {
        match self {
            HealthVerdict::Healthy => "healthy",
            HealthVerdict::Warn => "warn",
            HealthVerdict::Stall => "stall",
            HealthVerdict::Hang => "hang",
        }
    }
}

impl std::fmt::Display for HealthVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured watchdog observation.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthEvent {
    /// A run produced no lifecycle events for `idle_ns` (first rung).
    Warn {
        /// Affected run.
        run_id: u64,
        /// Quiet time when the event fired (ns).
        idle_ns: u64,
        /// Lifecycle-clock timestamp (ns).
        t_ns: u64,
    },
    /// The quiet window crossed the stall threshold.
    Stall {
        /// Affected run.
        run_id: u64,
        /// Quiet time when the event fired (ns).
        idle_ns: u64,
        /// Lifecycle-clock timestamp (ns).
        t_ns: u64,
    },
    /// The quiet window crossed the hang threshold.
    Hang {
        /// Affected run.
        run_id: u64,
        /// Quiet time when the event fired (ns).
        idle_ns: u64,
        /// Lifecycle-clock timestamp (ns).
        t_ns: u64,
    },
    /// One task has run far past its learned estimate.
    Straggler {
        /// Affected run.
        run_id: u64,
        /// Straggling task id.
        task: u32,
        /// Task name.
        name: String,
        /// Runtime so far (ns).
        runtime_ns: u64,
        /// EWMA estimate it is compared against (ns).
        estimate_ns: u64,
        /// Lifecycle-clock timestamp (ns).
        t_ns: u64,
    },
    /// A previously warned/stalled/hung run made progress or finished.
    Recovered {
        /// Affected run.
        run_id: u64,
        /// Severity it recovered from.
        from: HealthVerdict,
        /// Lifecycle-clock timestamp (ns).
        t_ns: u64,
    },
    /// The watchdog tripped cooperative cancellation at its deadline.
    DeadlineCancelled {
        /// Affected run.
        run_id: u64,
        /// Lifecycle-clock timestamp (ns).
        t_ns: u64,
    },
}

impl HealthEvent {
    /// The run the event concerns.
    pub fn run_id(&self) -> u64 {
        match self {
            HealthEvent::Warn { run_id, .. }
            | HealthEvent::Stall { run_id, .. }
            | HealthEvent::Hang { run_id, .. }
            | HealthEvent::Straggler { run_id, .. }
            | HealthEvent::Recovered { run_id, .. }
            | HealthEvent::DeadlineCancelled { run_id, .. } => *run_id,
        }
    }

    /// Stable lowercase kind name.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthEvent::Warn { .. } => "warn",
            HealthEvent::Stall { .. } => "stall",
            HealthEvent::Hang { .. } => "hang",
            HealthEvent::Straggler { .. } => "straggler",
            HealthEvent::Recovered { .. } => "recovered",
            HealthEvent::DeadlineCancelled { .. } => "deadline_cancelled",
        }
    }

    /// JSON form for `/health` and artifacts.
    pub fn to_json(&self) -> Value {
        let mut o = Map::new();
        o.insert("kind".into(), Value::Str(self.kind().to_string()));
        o.insert("run_id".into(), Value::UInt(self.run_id()));
        match self {
            HealthEvent::Warn { idle_ns, t_ns, .. }
            | HealthEvent::Stall { idle_ns, t_ns, .. }
            | HealthEvent::Hang { idle_ns, t_ns, .. } => {
                o.insert("idle_ns".into(), Value::UInt(*idle_ns));
                o.insert("t_ns".into(), Value::UInt(*t_ns));
            }
            HealthEvent::Straggler {
                task,
                name,
                runtime_ns,
                estimate_ns,
                t_ns,
                ..
            } => {
                o.insert("task".into(), Value::UInt(*task as u64));
                o.insert("name".into(), Value::Str(name.clone()));
                o.insert("runtime_ns".into(), Value::UInt(*runtime_ns));
                o.insert("estimate_ns".into(), Value::UInt(*estimate_ns));
                o.insert("t_ns".into(), Value::UInt(*t_ns));
            }
            HealthEvent::Recovered { from, t_ns, .. } => {
                o.insert("from".into(), Value::Str(from.name().to_string()));
                o.insert("t_ns".into(), Value::UInt(*t_ns));
            }
            HealthEvent::DeadlineCancelled { t_ns, .. } => {
                o.insert("t_ns".into(), Value::UInt(*t_ns));
            }
        }
        Value::Object(o)
    }
}

/// Watchdog thresholds. Defaults suit tests and interactive use; raise
/// them for production-sized runs.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Monitor poll period.
    pub poll: Duration,
    /// Quiet time before a `Warn`.
    pub warn_after: Duration,
    /// Quiet time before a `Stall`.
    pub stall_after: Duration,
    /// Quiet time before a `Hang`.
    pub hang_after: Duration,
    /// A task is a straggler when its runtime exceeds
    /// `straggler_factor ×` its learned EWMA estimate…
    pub straggler_factor: f64,
    /// …and also exceeds this absolute floor (filters noise on
    /// microsecond tasks).
    pub straggler_min: Duration,
    /// Quiet time after which the watchdog cancels the run
    /// (`None` = observe only, never cancel).
    pub cancel_after: Option<Duration>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            poll: Duration::from_millis(10),
            warn_after: Duration::from_millis(100),
            stall_after: Duration::from_millis(500),
            hang_after: Duration::from_secs(5),
            straggler_factor: 4.0,
            straggler_min: Duration::from_millis(50),
            cancel_after: None,
        }
    }
}

/// One armed run, tracked by the monitor thread.
struct ArmedRun {
    handle: CancelHandle,
    label: String,
    level: HealthVerdict,
    last_events: u64,
    last_progress_ns: u64,
    flagged: Vec<u32>,
    cancelled: bool,
    done: bool,
}

struct WatchInner {
    recorder: Arc<FlightRecorder>,
    config: WatchdogConfig,
    shutdown: AtomicBool,
    runs: Mutex<Vec<ArmedRun>>,
    events: Mutex<Vec<HealthEvent>>,
}

impl WatchInner {
    /// One monitor tick: pump the recorder, then walk armed runs.
    fn tick(&self) {
        self.recorder.pump();
        let now = lifecycle_now_ns();
        let cfg = &self.config;
        let mut runs = self.runs.lock();
        let mut out = Vec::new();
        for run in runs.iter_mut() {
            if run.done {
                continue;
            }
            let run_id = run.handle.run_id();
            if run.handle.is_done() {
                run.done = true;
                if run.level > HealthVerdict::Healthy {
                    out.push(HealthEvent::Recovered {
                        run_id,
                        from: run.level,
                        t_ns: now,
                    });
                    run.level = HealthVerdict::Healthy;
                }
                continue;
            }
            let progress = self.recorder.run_progress(run_id);
            if let Some(p) = &progress {
                if p.events > run.last_events {
                    run.last_events = p.events;
                    run.last_progress_ns = now;
                    if run.level > HealthVerdict::Healthy {
                        out.push(HealthEvent::Recovered {
                            run_id,
                            from: run.level,
                            t_ns: now,
                        });
                        run.level = HealthVerdict::Healthy;
                    }
                }
            }
            let idle_ns = now.saturating_sub(run.last_progress_ns);
            let idle = Duration::from_nanos(idle_ns);
            let target = if idle >= cfg.hang_after {
                HealthVerdict::Hang
            } else if idle >= cfg.stall_after {
                HealthVerdict::Stall
            } else if idle >= cfg.warn_after {
                HealthVerdict::Warn
            } else {
                HealthVerdict::Healthy
            };
            // Escalate one rung at a time so every level is visible.
            while run.level < target {
                run.level = match run.level {
                    HealthVerdict::Healthy => HealthVerdict::Warn,
                    HealthVerdict::Warn => HealthVerdict::Stall,
                    _ => HealthVerdict::Hang,
                };
                out.push(match run.level {
                    HealthVerdict::Warn => HealthEvent::Warn {
                        run_id,
                        idle_ns,
                        t_ns: now,
                    },
                    HealthVerdict::Stall => HealthEvent::Stall {
                        run_id,
                        idle_ns,
                        t_ns: now,
                    },
                    _ => HealthEvent::Hang {
                        run_id,
                        idle_ns,
                        t_ns: now,
                    },
                });
            }
            // Straggler scan: in-flight tasks far past their estimate.
            if let Some(p) = &progress {
                let graph = run.label.clone();
                for &(task, ref name, started_ns) in &p.inflight {
                    if run.flagged.contains(&task) {
                        continue;
                    }
                    let runtime_ns = now.saturating_sub(started_ns);
                    if runtime_ns < cfg.straggler_min.as_nanos() as u64 {
                        continue;
                    }
                    let est = self
                        .recorder
                        .exec_estimate(&graph, task)
                        .unwrap_or(cfg.straggler_min.as_nanos() as f64);
                    if runtime_ns as f64 > cfg.straggler_factor * est {
                        run.flagged.push(task);
                        out.push(HealthEvent::Straggler {
                            run_id,
                            task,
                            name: name.to_string(),
                            runtime_ns,
                            estimate_ns: est as u64,
                            t_ns: now,
                        });
                    }
                }
            }
            if let Some(deadline) = cfg.cancel_after {
                if !run.cancelled && idle >= deadline {
                    run.cancelled = true;
                    run.handle.cancel();
                    out.push(HealthEvent::DeadlineCancelled { run_id, t_ns: now });
                }
            }
        }
        drop(runs);
        if !out.is_empty() {
            self.events.lock().extend(out);
        }
    }

    fn verdict(&self) -> HealthVerdict {
        self.runs
            .lock()
            .iter()
            .filter(|r| !r.done)
            .map(|r| r.level)
            .max()
            .unwrap_or(HealthVerdict::Healthy)
    }
}

/// Straggler/hang watchdog: a monitor thread that pumps a
/// [`FlightRecorder`] and watches armed runs for quiet windows and
/// stragglers, escalating structured [`HealthEvent`]s.
pub struct Watchdog {
    inner: Arc<WatchInner>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Watchdog {
    /// Spawns the monitor thread.
    pub fn spawn(recorder: Arc<FlightRecorder>, config: WatchdogConfig) -> Arc<Self> {
        let inner = Arc::new(WatchInner {
            recorder,
            config,
            shutdown: AtomicBool::new(false),
            runs: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        });
        let monitor = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("hf-watchdog".into())
            .spawn(move || {
                // Sleep in short slices so Drop's join never waits a full
                // (possibly long) poll period for the thread to notice
                // shutdown.
                let slice = monitor.config.poll.min(Duration::from_millis(20));
                let mut slept = Duration::ZERO;
                while !monitor.shutdown.load(Ordering::Acquire) {
                    std::thread::sleep(slice);
                    slept += slice;
                    if slept >= monitor.config.poll {
                        slept = Duration::ZERO;
                        monitor.tick();
                    }
                }
            })
            .expect("spawn watchdog thread");
        Arc::new(Self {
            inner,
            thread: Mutex::new(Some(handle)),
        })
    }

    /// Arms the watchdog for `fut`'s run. `label` names the run in
    /// events and must match the graph name for straggler estimates to
    /// resolve. Already-done or ready futures (run id 0) are ignored.
    pub fn arm(&self, fut: &RunFuture, label: &str) {
        if fut.run_id() == 0 || fut.is_done() {
            return;
        }
        self.arm_handle(fut.handle(), label);
    }

    /// Arms the watchdog for a detached [`CancelHandle`].
    pub fn arm_handle(&self, handle: CancelHandle, label: &str) {
        let now = lifecycle_now_ns();
        self.inner.runs.lock().push(ArmedRun {
            handle,
            label: label.to_string(),
            level: HealthVerdict::Healthy,
            last_events: 0,
            last_progress_ns: now,
            flagged: Vec::new(),
            cancelled: false,
            done: false,
        });
    }

    /// Worst current severity across armed, unfinished runs.
    pub fn verdict(&self) -> HealthVerdict {
        self.inner.verdict()
    }

    /// All health events observed so far, in order.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.inner.events.lock().clone()
    }

    /// Forces one monitor tick now (tests, scrape handlers).
    pub fn tick_now(&self) {
        self.inner.tick();
    }

    /// The `/health` document: overall verdict, per-run state, events.
    pub fn health_json(&self) -> Value {
        let mut o = Map::new();
        o.insert(
            "verdict".into(),
            Value::Str(self.verdict().name().to_string()),
        );
        let now = lifecycle_now_ns();
        let runs = self.inner.runs.lock();
        o.insert(
            "runs".into(),
            Value::Array(
                runs.iter()
                    .map(|r| {
                        let mut ro = Map::new();
                        ro.insert("run_id".into(), Value::UInt(r.handle.run_id()));
                        ro.insert("label".into(), Value::Str(r.label.clone()));
                        ro.insert("level".into(), Value::Str(r.level.name().to_string()));
                        ro.insert("done".into(), Value::Bool(r.done));
                        ro.insert("cancelled".into(), Value::Bool(r.cancelled));
                        ro.insert(
                            "idle_ns".into(),
                            Value::UInt(if r.done {
                                0
                            } else {
                                now.saturating_sub(r.last_progress_ns)
                            }),
                        );
                        Value::Object(ro)
                    })
                    .collect(),
            ),
        );
        drop(runs);
        o.insert(
            "events".into(),
            Value::Array(self.events().iter().map(HealthEvent::to_json).collect()),
        );
        Value::Object(o)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_core::TaskKind;

    fn ev(run_id: u64, phase: LifecyclePhase, task: Option<u32>, t_ns: u64) -> LifecycleEvent {
        LifecycleEvent {
            run_id,
            graph: Arc::from("g"),
            phase,
            task,
            name: Arc::from(task.map(|t| format!("t{t}")).unwrap_or_else(|| "g".into())),
            kind: task.map(|_| TaskKind::Host),
            device: None,
            worker: Some(0),
            chain: None,
            bytes: 0,
            ok: true,
            detail: None,
            epoch: None,
            tenant: None,
            t_ns,
        }
    }

    fn tenant_ev(
        run_id: u64,
        tenant: &str,
        phase: LifecyclePhase,
        task: Option<u32>,
        t_ns: u64,
    ) -> LifecycleEvent {
        let mut e = ev(run_id, phase, task, t_ns);
        e.tenant = Some(Arc::from(tenant));
        e
    }

    #[test]
    fn pump_attributes_latency_components() {
        let r = FlightRecorder::new();
        r.on_lifecycle(&ev(1, LifecyclePhase::RunStart, None, 1_000));
        r.on_lifecycle(&ev(1, LifecyclePhase::Ready, Some(0), 2_000));
        r.on_lifecycle(&ev(1, LifecyclePhase::Started, Some(0), 5_000));
        r.on_lifecycle(&ev(1, LifecyclePhase::Finished, Some(0), 9_000));
        r.on_lifecycle(&ev(1, LifecyclePhase::RunEnd, None, 10_000));
        assert_eq!(r.pump(), 5);
        let (qd, ex, rl) = r.latency_histograms();
        assert_eq!(qd.count, 1);
        assert!((qd.sum - 3_000.0).abs() < 1e-9, "queue delay = started - ready");
        assert_eq!(ex.count, 1);
        assert!((ex.sum - 4_000.0).abs() < 1e-9, "exec = finished - started");
        assert_eq!(rl.count, 1);
        assert!((rl.sum - 9_000.0).abs() < 1e-9, "run latency = end - start");
        let s = &r.summaries()[0];
        assert_eq!(s.run_id, 1);
        assert_eq!(s.ok, Some(true));
        assert_eq!(s.tasks, 1);
    }

    #[test]
    fn pump_attributes_per_tenant_latency() {
        let r = FlightRecorder::new();
        // Run 1 belongs to tenant "small", run 2 to "batch", run 3 is a
        // direct (untenanted) submission.
        r.on_lifecycle(&tenant_ev(1, "small", LifecyclePhase::RunStart, None, 1_000));
        r.on_lifecycle(&tenant_ev(1, "small", LifecyclePhase::Ready, Some(0), 2_000));
        r.on_lifecycle(&tenant_ev(1, "small", LifecyclePhase::Started, Some(0), 3_000));
        r.on_lifecycle(&tenant_ev(1, "small", LifecyclePhase::Finished, Some(0), 4_000));
        r.on_lifecycle(&tenant_ev(1, "small", LifecyclePhase::RunEnd, None, 5_000));
        r.on_lifecycle(&tenant_ev(2, "batch", LifecyclePhase::RunStart, None, 1_000));
        let mut end = tenant_ev(2, "batch", LifecyclePhase::RunEnd, None, 21_000);
        end.ok = false;
        r.on_lifecycle(&end);
        r.on_lifecycle(&ev(3, LifecyclePhase::RunStart, None, 1_000));
        r.on_lifecycle(&ev(3, LifecyclePhase::RunEnd, None, 2_000));
        r.pump();

        // Unlabeled aggregates fold every run, tenanted or not.
        let (_, _, rl) = r.latency_histograms();
        assert_eq!(rl.count, 3, "aggregate run latency counts all runs");

        let tenants = r.tenant_latencies();
        assert_eq!(tenants.len(), 2, "direct submission creates no tenant");
        let batch = &tenants[0];
        let small = &tenants[1];
        assert_eq!(batch.tenant, "batch");
        assert_eq!((batch.runs, batch.failed), (1, 1));
        assert!((batch.run_latency.sum - 20_000.0).abs() < 1e-9);
        assert_eq!(small.tenant, "small");
        assert_eq!((small.runs, small.failed), (1, 0));
        assert!((small.run_latency.sum - 4_000.0).abs() < 1e-9);
        assert_eq!(small.queue_delay.count, 1);
        assert_eq!(small.exec.count, 1);

        // Summaries and dumps carry the attribution.
        let sums = r.summaries();
        assert_eq!(
            sums.iter()
                .find(|s| s.run_id == 1)
                .and_then(|s| s.tenant.clone()),
            Some("small".to_string())
        );
        assert_eq!(
            sums.iter().find(|s| s.run_id == 3).map(|s| s.tenant.clone()),
            Some(None)
        );
        let text =
            serde_json::to_string(&r.dump_run_json(2).expect("retained")).expect("infallible");
        assert!(text.contains("\"tenant\":\"batch\""), "{text}");
        let tj = serde_json::to_string(&r.tenants_json()).expect("infallible");
        assert!(tj.contains("hf-tenants-v1"), "{tj}");
        assert!(tj.contains("\"tenant\":\"small\""), "{tj}");

        // Prometheus export gains labeled series; aggregates stay.
        let reg = MetricsRegistry::new();
        r.export_into(&reg);
        let prom = reg.prometheus_text();
        assert!(
            prom.contains("hf_run_latency_nanos_bucket{tenant=\"small\""),
            "{prom}"
        );
        assert!(prom.contains("hf_tenant_runs_total{tenant=\"batch\"} 1"), "{prom}");
        assert!(
            prom.contains("hf_tenant_runs_failed_total{tenant=\"batch\"} 1"),
            "{prom}"
        );
        // The unlabeled aggregate count line still reports all 3 runs.
        assert!(prom.contains("hf_run_latency_nanos_count 3"), "{prom}");
    }

    #[test]
    fn pump_attributes_epoch_latency() {
        let r = FlightRecorder::new();
        r.on_lifecycle(&ev(3, LifecyclePhase::RunStart, None, 1_000));
        let mut e0 = ev(3, LifecyclePhase::EpochStart, None, 2_000);
        e0.epoch = Some(0);
        r.on_lifecycle(&e0);
        let mut e1 = ev(3, LifecyclePhase::EpochStart, None, 3_000);
        e1.epoch = Some(1);
        r.on_lifecycle(&e1);
        let mut d0 = ev(3, LifecyclePhase::EpochEnd, None, 7_000);
        d0.epoch = Some(0);
        r.on_lifecycle(&d0);
        let mut d1 = ev(3, LifecyclePhase::EpochEnd, None, 12_000);
        d1.epoch = Some(1);
        r.on_lifecycle(&d1);
        r.on_lifecycle(&ev(3, LifecyclePhase::RunEnd, None, 13_000));
        assert_eq!(r.pump(), 6);
        let h = r.epoch_latency_histogram();
        assert_eq!(h.count, 2);
        assert!(
            (h.sum - 14_000.0).abs() < 1e-9,
            "epoch latency = end - start per epoch: 5000 + 9000"
        );
        let json = r.dump_run_json(3).expect("run retained");
        let text = serde_json::to_string(&json).expect("infallible");
        assert!(text.contains("\"epochs_completed\":2"), "{text}");
        assert!(text.contains("\"epoch\":1"), "{text}");
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::new();
        r.set_enabled(false);
        assert!(!r.is_active());
        r.on_lifecycle(&ev(1, LifecyclePhase::RunStart, None, 0));
        assert_eq!(r.events_recorded(), 0);
        assert_eq!(r.pump(), 0);
        assert!(r.summaries().is_empty());
    }

    #[test]
    fn failed_run_auto_dumps_blackbox() {
        let dir = std::env::temp_dir().join(format!(
            "hf_blackbox_test_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let r = FlightRecorder::new();
        r.set_blackbox_dir(Some(dir.clone()));
        r.on_lifecycle(&ev(7, LifecyclePhase::RunStart, None, 0));
        let mut end = ev(7, LifecyclePhase::RunEnd, None, 500);
        end.ok = false;
        end.detail = Some(Arc::from("device lost"));
        r.on_lifecycle(&end);
        r.pump();
        let path = dir.join("blackbox_run7.json");
        let text = std::fs::read_to_string(&path).expect("blackbox written");
        let v = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(v.get("run_id").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(
            v.get("detail").and_then(|x| x.as_str()),
            Some("device lost")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_runs_are_trimmed() {
        let r = FlightRecorder::new();
        for id in 1..=40u64 {
            r.on_lifecycle(&ev(id, LifecyclePhase::RunStart, None, id * 10));
            r.on_lifecycle(&ev(id, LifecyclePhase::RunEnd, None, id * 10 + 5));
        }
        r.pump();
        let s = r.summaries();
        assert!(s.len() <= DEFAULT_KEEP_COMPLETED, "retention window holds");
        assert_eq!(s.last().unwrap().run_id, 40, "newest run retained");
    }

    #[test]
    fn watchdog_escalates_and_recovers() {
        let recorder = FlightRecorder::shared();
        let wd = Watchdog::spawn(
            Arc::clone(&recorder),
            WatchdogConfig {
                poll: Duration::from_secs(3600), // tick manually
                warn_after: Duration::from_nanos(1),
                stall_after: Duration::from_nanos(2),
                hang_after: Duration::from_secs(3600),
                ..WatchdogConfig::default()
            },
        );
        // Arm a synthetic run via a never-completing handle substitute:
        // use a real executor run? Simpler: recorder-only escalation needs
        // a CancelHandle, so drive a real (blocked) run in the executor
        // integration tests; here exercise verdict bookkeeping directly.
        assert_eq!(wd.verdict(), HealthVerdict::Healthy);
        assert!(wd.events().is_empty());
    }

    #[test]
    fn exec_estimate_learns_ewma() {
        let r = FlightRecorder::new();
        r.on_lifecycle(&ev(1, LifecyclePhase::RunStart, None, 0));
        for (i, dur) in [1_000u64, 2_000, 3_000].iter().enumerate() {
            let base = 10_000 * (i as u64 + 1);
            r.on_lifecycle(&ev(1, LifecyclePhase::Ready, Some(0), base));
            r.on_lifecycle(&ev(1, LifecyclePhase::Started, Some(0), base + 10));
            r.on_lifecycle(&ev(1, LifecyclePhase::Finished, Some(0), base + 10 + dur));
        }
        r.pump();
        let est = r.exec_estimate("g", 0).expect("estimate learned");
        assert!(est > 1_000.0 && est < 3_000.0, "EWMA between extremes: {est}");
    }
}
