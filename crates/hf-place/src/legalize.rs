//! Legalization: snapping desired (possibly fractional, overlapping)
//! cell positions onto distinct row/site locations.
//!
//! Detailed placement *refines a legalized placement solution* (§IV-B);
//! in the DREAMPlace pipeline a legalizer sits between analytical global
//! placement and detailed placement. This module implements the classic
//! Tetris-style greedy: process cells in x-order and pack each into the
//! nearest free site across candidate rows, minimizing displacement.

use crate::db::{Cell, PlacementDb};

/// A desired (pre-legalization) position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// Desired x (site units, fractional).
    pub x: f32,
    /// Desired y (row units, fractional).
    pub y: f32,
}

/// Outcome metrics of a legalization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalizeStats {
    /// Total Manhattan displacement between desired and final positions.
    pub total_displacement: f64,
    /// Largest single-cell displacement.
    pub max_displacement: f64,
    /// Cells moved (desired site differed from final).
    pub cells_moved: usize,
}

/// Per-row fill state: next free site in each row (Tetris packing).
struct RowFill {
    next_free: Vec<u32>,
}

impl RowFill {
    fn new(rows: u32) -> Self {
        Self {
            next_free: vec![0; rows as usize],
        }
    }
}

/// Legalizes `targets` onto the grid of `rows x sites`. Fixed cells in
/// `fixed_at` keep their exact (legal) positions and block their sites.
///
/// Returns the legal positions (same order as `targets`) and stats.
///
/// # Panics
/// If the grid cannot hold all cells, or a fixed position is off-grid or
/// duplicated.
pub fn legalize(
    targets: &[Target],
    fixed_at: &[Option<(u32, u32)>],
    rows: u32,
    sites: u32,
) -> (Vec<(u32, u32)>, LegalizeStats) {
    let n = targets.len();
    assert_eq!(fixed_at.len(), n, "one fixed slot per cell");
    assert!(
        (rows as u64) * (sites as u64) >= n as u64,
        "grid too small for {n} cells"
    );

    let mut occupied = std::collections::HashSet::new();
    let mut result: Vec<Option<(u32, u32)>> = vec![None; n];

    // Fixed cells first: they block sites.
    for (i, f) in fixed_at.iter().enumerate() {
        if let Some((x, y)) = f {
            assert!(*x < sites && *y < rows, "fixed cell {i} off grid");
            assert!(occupied.insert((*x, *y)), "fixed cells overlap at ({x},{y})");
            result[i] = Some((*x, *y));
        }
    }

    // Movable cells in ascending desired-x order (Tetris sweep).
    let mut order: Vec<usize> = (0..n).filter(|&i| fixed_at[i].is_none()).collect();
    order.sort_by(|&a, &b| {
        targets[a]
            .x
            .partial_cmp(&targets[b].x)
            .expect("finite targets")
            .then_with(|| a.cmp(&b))
    });

    let mut fill = RowFill::new(rows);
    for &i in &order {
        let t = targets[i];
        let want_row = (t.y.round().max(0.0) as u32).min(rows - 1);
        // Try rows by increasing distance from the desired row; in each,
        // the candidate site is the max of the desired x and the row's
        // packing frontier, skipping fixed blockages.
        let mut best: Option<(u64, u32, u32)> = None; // (cost, x, y)
        for dr in 0..rows {
            for row in candidate_rows(want_row, dr, rows) {
                let mut x = (t.x.round().max(0.0) as u32)
                    .min(sites - 1)
                    .max(fill.next_free[row as usize]);
                while x < sites && occupied.contains(&(x, row)) {
                    x += 1;
                }
                if x >= sites {
                    continue;
                }
                let cost = (f64::from(x) - f64::from(t.x)).abs() as u64
                    + (f64::from(row) - f64::from(t.y)).abs() as u64;
                if best.is_none_or(|(bc, _, _)| cost < bc) {
                    best = Some((cost, x, row));
                }
            }
            // Early exit: the best cost found cannot be beaten by rows
            // further than it.
            if let Some((bc, _, _)) = best {
                if (dr as u64) > bc {
                    break;
                }
            }
        }
        let (_, x, y) = match best {
            Some(b) => b,
            None => {
                // The packing frontier only moves right and can strand
                // free sites to its left; fall back to a full scan for
                // the min-cost free site (rare, so O(grid) is fine).
                let mut fb: Option<(u64, u32, u32)> = None;
                for row in 0..rows {
                    for x in 0..sites {
                        if occupied.contains(&(x, row)) {
                            continue;
                        }
                        let cost = (f64::from(x) - f64::from(t.x)).abs() as u64
                            + (f64::from(row) - f64::from(t.y)).abs() as u64;
                        if fb.is_none_or(|(bc, _, _)| cost < bc) {
                            fb = Some((cost, x, row));
                        }
                    }
                }
                fb.expect("grid has capacity")
            }
        };
        occupied.insert((x, y));
        fill.next_free[y as usize] = fill.next_free[y as usize].max(x + 1);
        result[i] = Some((x, y));
    }

    let result: Vec<(u32, u32)> = result.into_iter().map(|r| r.expect("placed")).collect();
    let mut total = 0.0f64;
    let mut max_d = 0.0f64;
    let mut moved = 0usize;
    for (i, &(x, y)) in result.iter().enumerate() {
        let d = (f64::from(x) - f64::from(targets[i].x)).abs()
            + (f64::from(y) - f64::from(targets[i].y)).abs();
        total += d;
        max_d = max_d.max(d);
        if d > 0.5 {
            moved += 1;
        }
    }
    (
        result,
        LegalizeStats {
            total_displacement: total,
            max_displacement: max_d,
            cells_moved: moved,
        },
    )
}

/// Rows at distance `dr` from `want` (one or two candidates).
fn candidate_rows(want: u32, dr: u32, rows: u32) -> impl Iterator<Item = u32> {
    let lo = want.checked_sub(dr);
    let hi = if dr > 0 && want + dr < rows {
        Some(want + dr)
    } else {
        None
    };
    lo.into_iter().chain(hi)
}

/// Builds a legal [`PlacementDb`] from desired positions and a netlist.
pub fn legalize_into_db(
    targets: &[Target],
    fixed: &[bool],
    nets: Vec<crate::db::Net>,
    rows: u32,
    sites: u32,
) -> (PlacementDb, LegalizeStats) {
    let fixed_at: Vec<Option<(u32, u32)>> = targets
        .iter()
        .zip(fixed)
        .map(|(t, &f)| {
            f.then(|| {
                (
                    (t.x.round().max(0.0) as u32).min(sites - 1),
                    (t.y.round().max(0.0) as u32).min(rows - 1),
                )
            })
        })
        .collect();
    let (pos, stats) = legalize(targets, &fixed_at, rows, sites);
    let cells: Vec<Cell> = pos
        .iter()
        .zip(fixed)
        .map(|(&(x, y), &f)| Cell { x, y, fixed: f })
        .collect();
    let mut nets_of = vec![Vec::new(); cells.len()];
    for (ni, net) in nets.iter().enumerate() {
        for &p in &net.pins {
            nets_of[p as usize].push(ni as u32);
        }
    }
    let db = PlacementDb {
        cells,
        nets,
        nets_of,
        num_rows: rows,
        sites_per_row: sites,
    };
    db.check_legal().expect("legalizer produced overlap");
    (db, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_legal_targets_stay_put() {
        let targets: Vec<Target> = (0..16)
            .map(|i| Target {
                x: (i % 4) as f32,
                y: (i / 4) as f32,
            })
            .collect();
        let fixed = vec![None; 16];
        let (pos, stats) = legalize(&targets, &fixed, 4, 4);
        for (i, &(x, y)) in pos.iter().enumerate() {
            assert_eq!((x, y), ((i % 4) as u32, (i / 4) as u32));
        }
        assert_eq!(stats.total_displacement, 0.0);
        assert_eq!(stats.cells_moved, 0);
    }

    #[test]
    fn overlapping_targets_get_spread() {
        // All cells want the same site.
        let targets = vec![Target { x: 2.0, y: 2.0 }; 9];
        let fixed = vec![None; 9];
        let (pos, stats) = legalize(&targets, &fixed, 5, 5);
        let unique: std::collections::HashSet<_> = pos.iter().collect();
        assert_eq!(unique.len(), 9, "overlap remained");
        assert!(stats.cells_moved >= 8);
        // Everything stays near the hotspot.
        assert!(stats.max_displacement <= 6.0, "{stats:?}");
    }

    #[test]
    fn fixed_cells_block_their_sites() {
        let targets = vec![Target { x: 0.0, y: 0.0 }, Target { x: 0.0, y: 0.0 }];
        let fixed_at = vec![Some((0u32, 0u32)), None];
        let (pos, _) = legalize(&targets, &fixed_at, 2, 2);
        assert_eq!(pos[0], (0, 0));
        assert_ne!(pos[1], (0, 0));
    }

    #[test]
    fn fractional_targets_round_sanely() {
        let targets = vec![Target { x: 1.4, y: 0.6 }, Target { x: 3.9, y: 1.2 }];
        let (pos, stats) = legalize(&targets, &[None, None], 3, 5);
        assert_eq!(pos[0], (1, 1));
        assert_eq!(pos[1], (4, 1));
        assert!(stats.total_displacement < 2.0);
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn overfull_grid_rejected() {
        let targets = vec![Target { x: 0.0, y: 0.0 }; 5];
        legalize(&targets, &[None; 5], 2, 2);
    }

    #[test]
    fn legalize_into_db_is_legal_and_placeable() {
        // Clustered random-ish targets with a couple of nets.
        let targets: Vec<Target> = (0..60)
            .map(|i| Target {
                x: (i as f32 * 0.37) % 9.0,
                y: (i as f32 * 0.73) % 9.0,
            })
            .collect();
        let fixed = vec![false; 60];
        let nets = (0..50)
            .map(|i| crate::db::Net {
                pins: vec![i as u32, ((i * 7 + 3) % 60) as u32],
            })
            .collect();
        let (db, stats) = legalize_into_db(&targets, &fixed, nets, 10, 10);
        assert!(stats.max_displacement < 10.0);
        // The legalized placement feeds straight into detailed placement.
        let out = crate::algo::detailed_place_sequential(
            db,
            crate::algo::PlaceConfig {
                iterations: 2,
                ..Default::default()
            },
        );
        assert!(out.hpwl_after <= out.hpwl_before);
    }
}
