//! VLSI static timing analysis application substrate (OpenTimer-like).
//!
//! The paper's first evaluation workload (§IV-A) is *timing correlation*:
//! OpenTimer generates per-view analysis datasets for the 1.5M-gate
//! `netcard` circuit; a hybrid CPU-GPU algorithm extracts critical paths
//! and CPPR credits on CPUs and fits a logistic-regression model on a GPU
//! per view; a final synchronization step combines everything into a
//! report. This crate rebuilds that entire pipeline:
//!
//! * [`netlist`] — gate-level circuit model and a synthetic
//!   `netcard`-like generator (parameterized size, seeded).
//! * [`sta`] — levelized arrival/required/slack propagation per view.
//! * [`paths`] — k-critical-path extraction (best-first deviation search).
//! * [`cppr`] — clock tree + common path pessimism removal credits.
//! * [`regression`] — logistic regression with gradient descent, written
//!   as a Heteroflow GPU kernel.
//! * [`views`] — corner/mode analysis views and the Fig 4 growth table.
//! * [`correlation`] — assembles the per-view hybrid CPU-GPU task graph
//!   of Fig 5 and runs it on a Heteroflow executor.

#![warn(missing_docs)]

pub mod bench_io;
pub mod correlation;
pub mod cppr;
pub mod history;
pub mod holdtime;
pub mod incremental;
pub mod netlist;
pub mod parallel;
pub mod paths;
pub mod regression;
pub mod report;
pub mod slew;
pub mod sta;
pub mod views;

pub use bench_io::{parse_bench, write_bench, BenchParseError};
pub use correlation::{build_correlation_graph, CorrelationConfig, CorrelationReport};
pub use history::TaskTimingHistory;
pub use holdtime::{run_early_late, EarlyLateReport};
pub use incremental::IncrementalTimer;
pub use parallel::run_sta_parallel;
pub use netlist::{Circuit, CircuitConfig, Gate, GateKind};
pub use paths::{k_critical_paths, TimingPath};
pub use report::{report_timing, ReportConfig};
pub use slew::{run_sta_with_slew, SlewModel, SlewReport};
pub use sta::{run_sta, TimingReport};
pub use views::{view_growth_table, Corner, Mode, View};
