//! Cache-line padding to prevent false sharing between adjacent atomics.

/// Pads and aligns `T` to (a conservative estimate of) the cache-line
/// size, so two neighbouring values never share a line. 128 bytes covers
/// x86-64 spatial prefetcher pairs and Apple/ARM big cores.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u64>>(), 128);
        // Adjacent array elements land on distinct lines.
        let pair = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &*pair[0] as *const u64 as usize;
        let b = &*pair[1] as *const u64 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
