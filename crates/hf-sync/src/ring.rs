//! Bounded lock-free event ring for telemetry producers.
//!
//! Telemetry recording must never block a worker or a device engine: a
//! span is pushed with a couple of atomic operations, and when the buffer
//! is full the event is *dropped* (counted) rather than stalling the hot
//! path. The queue is the classic Vyukov bounded MPMC design — every slot
//! carries a sequence number, so any number of producers (workers, device
//! engines, submission threads) and consumers (the trace collector's
//! drain) can operate without locks.

use crate::pad::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use crate::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot<T> {
    /// Sequence state: `pos` = empty and writable by the producer that
    /// claims `pos`; `pos + 1` = full and readable by the consumer that
    /// claims `pos`; `pos + cap` = consumed, writable one lap later.
    seq: AtomicU64,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC ring that drops (and counts) events instead
/// of blocking when full.
pub struct EventRing<T> {
    slots: Box<[Slot<T>]>,
    mask: u64,
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    dropped: AtomicU64,
}

// SAFETY: values are transferred between threads through the slots with
// acquire/release sequence handshakes; `T: Send` is all that's required.
unsafe impl<T: Send> Send for EventRing<T> {}
// SAFETY: as above — each slot position is claimed by exactly one producer
// and one consumer per lap.
unsafe impl<T: Send> Sync for EventRing<T> {}

impl<T> EventRing<T> {
    /// Creates a ring holding at least `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            mask: (cap - 1) as u64,
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Approximate number of buffered events.
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        head.saturating_sub(tail) as usize
    }

    /// True when no events are buffered (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes an event; returns `false` (incrementing the drop counter)
    /// when the ring is full. Lock-free and non-blocking.
    pub fn push(&self, value: T) -> bool {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Empty slot at our position: claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gives this thread exclusive
                        // write access until the release store below.
                        unsafe { (*slot.val.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(now) => pos = now,
                }
            } else if seq < pos {
                // A full lap behind: the ring is full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest event, if any. Lock-free and non-blocking.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                // Full slot at our position: claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gives this thread exclusive
                        // read access until the release store below.
                        let value = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq
                            .store(pos + self.slots.len() as u64, Ordering::Release);
                        return Some(value);
                    }
                    Err(now) => pos = now,
                }
            } else if seq <= pos {
                // Empty (or a producer mid-write at an older position).
                return None;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains every currently-buffered event into `f`.
    pub fn drain(&self, mut f: impl FnMut(T)) -> usize {
        let mut n = 0;
        while let Some(v) = self.pop() {
            f(v);
            n += 1;
        }
        n
    }
}

impl<T> Drop for EventRing<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// Per-lane counter used by consumers to report ring pressure.
#[derive(Debug, Default)]
pub struct DropCount(AtomicUsize);

impl DropCount {
    /// Adds to the counter.
    pub fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip() {
        let r = EventRing::new(8);
        for i in 0..8 {
            assert!(r.push(i));
        }
        assert_eq!(r.len(), 8);
        for i in 0..8 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let r = EventRing::new(4);
        for i in 0..4 {
            assert!(r.push(i));
        }
        assert!(!r.push(99));
        assert!(!r.push(100));
        assert_eq!(r.dropped(), 2);
        // Draining frees capacity again.
        assert_eq!(r.pop(), Some(0));
        assert!(r.push(4));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::<u8>::new(3).capacity(), 4);
        assert_eq!(EventRing::<u8>::new(0).capacity(), 2);
        assert_eq!(EventRing::<u8>::new(64).capacity(), 64);
    }

    #[test]
    fn wraps_many_laps() {
        let r = EventRing::new(4);
        for i in 0..1000u64 {
            assert!(r.push(i));
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn concurrent_producers_and_consumer() {
        let r = Arc::new(EventRing::new(1 << 12));
        let producers = 4;
        let per = 10_000u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..per {
                        while !r.push(p as u64 * per + i) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while seen.len() < (producers as usize) * per as usize {
                    r.drain(|v| seen.push(v));
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = consumer.join().unwrap();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..producers as u64 * per).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn drop_releases_buffered_values() {
        let v = Arc::new(());
        {
            let r = EventRing::new(8);
            for _ in 0..5 {
                r.push(Arc::clone(&v));
            }
        }
        assert_eq!(Arc::strong_count(&v), 1);
    }
}
