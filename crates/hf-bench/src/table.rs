//! Plain-text table printing for the figure harnesses.

/// One labeled series of values (e.g. "4 GPUs" over a core sweep).
#[derive(Debug, Clone)]
pub struct Row {
    /// Series label.
    pub label: String,
    /// Values, one per column.
    pub values: Vec<f64>,
}

/// Prints a matrix with a header column list, one row per series. Values
/// are printed with the given unit suffix.
pub fn print_matrix(title: &str, col_name: &str, cols: &[String], rows: &[Row], unit: &str) {
    println!("\n=== {title} ===");
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .chain([col_name.len()])
        .max()
        .unwrap_or(8)
        + 2;
    let col_w = cols.iter().map(|c| c.len()).max().unwrap_or(6).max(9) + 2;
    print!("{:label_w$}", col_name);
    for c in cols {
        print!("{c:>col_w$}");
    }
    println!();
    for r in rows {
        print!("{:label_w$}", r.label);
        for v in &r.values {
            let s = format!("{v:.2}{unit}");
            print!("{s:>col_w$}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_without_panicking() {
        print_matrix(
            "demo",
            "cores",
            &["1".into(), "8".into()],
            &[
                Row { label: "1 GPU".into(), values: vec![99.0, 23.5] },
                Row { label: "4 GPUs".into(), values: vec![51.0, 13.0] },
            ],
            "m",
        );
    }
}
