//! Sparse neural-network inference with task graph parallelism — the
//! "broader workload" the paper's conclusion names as future work
//! (refs [47][48]: large sparse NN inference via GPU task graphs).
//!
//! A sparse MLP is expressed as a Heteroflow graph: the CSR weight
//! arrays of every layer are pulled to the device once; each layer is a
//! kernel task computing `y = relu(W·x + b)` chained through activation
//! buffers; the final push returns the logits. Two independent input
//! batches run as parallel lanes, letting the scheduler overlap layers
//! of different batches across GPUs. Results are verified against a CPU
//! reference.
//!
//! Run: `cargo run --release --example sparse_nn`

use heteroflow::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sparse layer in CSR form.
#[derive(Clone)]
struct SparseLayer {
    rows: usize,
    cols: usize,
    row_off: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
    bias: Vec<f32>,
}

impl SparseLayer {
    /// Random layer with the given density.
    fn random(rows: usize, cols: usize, density: f64, rng: &mut StdRng) -> Self {
        let mut row_off = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_off.push(0u32);
        for _ in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    col_idx.push(c as u32);
                    values.push(rng.gen_range(-0.5f32..0.5));
                }
            }
            row_off.push(col_idx.len() as u32);
        }
        let bias = (0..rows).map(|_| rng.gen_range(-0.1f32..0.1)).collect();
        Self {
            rows,
            cols,
            row_off,
            col_idx,
            values,
            bias,
        }
    }

    /// CPU reference: `relu(W x + b)`.
    fn forward_cpu(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let (s, e) = (self.row_off[r] as usize, self.row_off[r + 1] as usize);
                let mut acc = self.bias[r];
                for k in s..e {
                    acc += self.values[k] * x[self.col_idx[k] as usize];
                }
                acc.max(0.0)
            })
            .collect()
    }
}

fn main() {
    const LAYERS: usize = 4;
    const WIDTH: usize = 256;
    const DENSITY: f64 = 0.08;
    const LANES: usize = 2;

    let mut rng = StdRng::seed_from_u64(0x5EED);
    let layers: Vec<SparseLayer> = (0..LAYERS)
        .map(|_| SparseLayer::random(WIDTH, WIDTH, DENSITY, &mut rng))
        .collect();
    let nnz: usize = layers.iter().map(|l| l.values.len()).sum();
    println!(
        "sparse MLP: {LAYERS} layers x {WIDTH} units, {nnz} non-zeros ({:.0}% dense)",
        DENSITY * 100.0
    );

    let executor = Executor::new(4, 2);
    let g = Heteroflow::new("sparse-nn");

    // Weights are pulled once and shared by all lanes through kernel
    // source lists (Algorithm 1 co-locates every user of a pull with it).
    let weight_pulls: Vec<[PullTask; 4]> = layers
        .iter()
        .enumerate()
        .map(|(li, l)| {
            let vals: HostVec<f32> = HostVec::from_vec(l.values.clone());
            let cols: HostVec<u32> = HostVec::from_vec(l.col_idx.clone());
            let offs: HostVec<u32> = HostVec::from_vec(l.row_off.clone());
            let bias: HostVec<f32> = HostVec::from_vec(l.bias.clone());
            [
                g.pull(&format!("w_vals{li}"), &vals),
                g.pull(&format!("w_cols{li}"), &cols),
                g.pull(&format!("w_offs{li}"), &offs),
                g.pull(&format!("w_bias{li}"), &bias),
            ]
        })
        .collect();

    let mut lane_outputs = Vec::new();
    let mut lane_inputs = Vec::new();
    for lane in 0..LANES {
        let input: Vec<f32> = (0..WIDTH)
            .map(|i| ((i * (lane + 3)) % 17) as f32 / 17.0)
            .collect();
        lane_inputs.push(input.clone());

        // Double-buffered activations per lane.
        let act_a: HostVec<f32> = HostVec::from_vec(input);
        let act_b: HostVec<f32> = HostVec::from_vec(vec![0.0; WIDTH]);
        let pull_a = g.pull(&format!("act_a{lane}"), &act_a);
        let pull_b = g.pull(&format!("act_b{lane}"), &act_b);

        let mut prev: TaskRef = pull_a.as_task();
        let mut cur_in = &pull_a;
        let mut cur_out = &pull_b;
        for (li, layer) in layers.iter().enumerate() {
            let wp = &weight_pulls[li];
            let rows = layer.rows;
            let k = g.kernel(
                &format!("layer{li}_lane{lane}"),
                &[&wp[0], &wp[1], &wp[2], &wp[3], cur_in, cur_out],
                move |cfg, args| {
                    // Read-only CSR arrays (copied out; see hf-gpu docs on
                    // simultaneous typed views).
                    let vals = args.slice::<f32>(0).expect("vals").to_vec();
                    let colv = args.slice::<u32>(1).expect("cols").to_vec();
                    let offs = args.slice::<u32>(2).expect("offs").to_vec();
                    let bias = args.slice::<f32>(3).expect("bias").to_vec();
                    let (x, y) = args.slice2_mut::<f32, f32>(4, 5).expect("disjoint");
                    for r in cfg.threads() {
                        if r >= rows {
                            continue;
                        }
                        let (s, e) = (offs[r] as usize, offs[r + 1] as usize);
                        let mut acc = bias[r];
                        for kk in s..e {
                            acc += vals[kk] * x[colv[kk] as usize];
                        }
                        y[r] = acc.max(0.0);
                    }
                },
            );
            k.cover(rows, 128)
                .work_units(layer.values.len() as f64 * 2.0);
            // Weights must be resident before every consumer —
            // dependencies are explicit in Heteroflow, and nothing else
            // orders this lane's kernels after the weight pulls.
            for w in wp {
                k.succeed(w);
            }
            k.succeed(&prev);
            if li == 0 {
                k.succeed(cur_out); // output buffer must be allocated
            }
            prev = k.as_task();
            std::mem::swap(&mut cur_in, &mut cur_out);
        }

        // After an even number of swaps, `cur_in` names the buffer
        // holding the final activations.
        let out_vec = if LAYERS.is_multiple_of(2) { act_a.clone() } else { act_b.clone() };
        let _ = &act_b;
        let push = g.push(&format!("logits{lane}"), cur_in, &out_vec);
        push.succeed(&prev);
        lane_outputs.push(out_vec);
    }

    assert!(g.analyze().is_clean(), "lint:\n{}", g.analyze().render_text());

    let t0 = std::time::Instant::now();
    executor.run(&g).wait().expect("inference graph runs");
    println!("inference of {LANES} lanes took {:.2?}", t0.elapsed());

    // Verify against the CPU reference.
    for (lane, out) in lane_outputs.iter().enumerate() {
        let mut x = lane_inputs[lane].clone();
        for l in &layers {
            x = l.forward_cpu(&x);
        }
        let got = out.to_vec();
        assert_eq!(got.len(), x.len());
        for (a, b) in got.iter().zip(&x) {
            assert!((a - b).abs() < 1e-4, "lane {lane}: {a} vs {b}");
        }
        let top = got
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        println!("lane {lane}: verified {} outputs; argmax = unit {} ({:.4})", got.len(), top.0, top.1);
    }
    println!("GPU task-graph inference matches the CPU reference");
}
