//! Shared harness utilities for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Binaries (one per evaluation figure — see DESIGN.md's experiment
//! index):
//!
//! * `fig4_views` — the view-growth motivation table (Fig 4).
//! * `fig6_timing` — timing-correlation runtimes vs cores/GPUs and vs
//!   problem size (Fig 6), with placement-policy ablation (A1).
//! * `fig9_placement` — detailed-placement runtimes vs cores/GPUs and vs
//!   iteration count (Fig 9), with the dedicated-GPU-worker ablation
//!   (A2).
//!
//! Methodology: the real application task graphs are built at a scaled
//! circuit size, per-host-task costs are *measured* from real single-core
//! execution of the actual task bodies (then scaled to the paper's
//! circuit sizes), and the `hf-sim` discrete-event model replays the
//! graphs on virtual 1–40-core, 1–4-GPU machines using the real
//! device-placement algorithm. See DESIGN.md for why this substitution
//! preserves the curves' shapes.

pub mod cli;
pub mod costs;
pub mod table;

pub use cli::Args;
pub use costs::NameCosts;
pub use table::{print_matrix, Row};
