//! VLSI detailed placement — the paper's second application (§IV-B,
//! Figs 7–8).
//!
//! Synthesizes a bigblue4-like placement, runs the matching-based
//! detailed-placement algorithm (GPU maximal independent set →
//! sequential partitioning → parallel bipartite matching) as a flattened
//! Heteroflow task graph, and prints the HPWL trajectory. Also verifies
//! the parallel run against the sequential reference.
//!
//! Run: `cargo run --release --example detailed_placement -- [cells] [iters]`

use heteroflow::place::{
    detailed_place, detailed_place_sequential, PlaceConfig, PlacementConfig, PlacementDb,
};
use heteroflow::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    println!("synthesizing {cells}-cell placement ...");
    let db_cfg = PlacementConfig {
        num_cells: cells,
        num_nets: cells,
        locality: 40, // loose nets leave room for improvement
        ..Default::default()
    };
    let db = PlacementDb::synthesize(&db_cfg);
    db.check_legal().expect("generator produces legal placements");
    println!(
        "layout: {} rows x {} sites, {} nets, HPWL {}",
        db.num_rows,
        db.sites_per_row,
        db.nets.len(),
        db.total_hpwl()
    );

    let cfg = PlaceConfig {
        iterations: iters,
        window_cap: 6,
        matchers: 4,
        ..Default::default()
    };

    let executor = Executor::new(4, 2);
    let t0 = std::time::Instant::now();
    let out = detailed_place(&executor, db.clone(), cfg).expect("placement graph runs");
    let elapsed = t0.elapsed();

    println!("\n=== detailed placement ({iters} iterations, {elapsed:.2?}) ===");
    println!("HPWL before: {}", out.hpwl_before);
    for (it, h) in out.hpwl_trace.iter().enumerate() {
        let gain = 100.0 * (out.hpwl_before as f64 - *h as f64) / out.hpwl_before as f64;
        println!("  iter {it:>2}: HPWL {h}  ({gain:+.2}%)");
    }
    out.db.check_legal().expect("placement stays legal");

    // The Heteroflow-parallel run is bit-identical to the sequential
    // reference: same priorities, exact kernels, independent windows.
    let seq = detailed_place_sequential(db, cfg);
    assert_eq!(seq.hpwl_trace, out.hpwl_trace, "parallel == sequential");
    println!(
        "\nverified against sequential reference: final HPWL {} ({:.2}% improvement)",
        out.hpwl_after,
        100.0 * (out.hpwl_before as f64 - out.hpwl_after as f64) / out.hpwl_before as f64
    );
}
