//! Exponential backoff for contended spin loops.

#[cfg_attr(feature = "loom", allow(dead_code))]
const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff helper.
///
/// Starts with busy spinning (`core::hint::spin_loop`), doubling the spin
/// count each step, then transitions to `thread::yield_now` once the spin
/// budget is exhausted. Mirrors the behaviour of
/// `crossbeam_utils::Backoff`, reimplemented here so the deque and the
/// executor have no behavioural dependency on external scheduling choices.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Creates a fresh backoff in the spinning state.
    #[inline]
    pub fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets to the initial (cheapest) state.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Backs off one step: spins for `2^step` iterations while in the spin
    /// phase, otherwise yields the thread.
    ///
    /// Under the `loom` feature every snooze is a single model-scheduler
    /// yield: the exponential spin would only multiply scheduling points
    /// without exploring any additional behavior.
    #[inline]
    pub fn snooze(&mut self) {
        #[cfg(not(feature = "loom"))]
        if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                crate::atomic::spin_loop_hint();
            }
        } else {
            crate::atomic::yield_now();
        }
        #[cfg(feature = "loom")]
        crate::atomic::yield_now();
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once spinning is no longer productive and the caller should
    /// park on a [`crate::Notifier`] instead.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_after_bounded_steps() {
        let mut b = Backoff::new();
        let mut steps = 0;
        while !b.is_completed() {
            b.snooze();
            steps += 1;
            assert!(steps < 64, "backoff never completed");
        }
        assert_eq!(steps, (YIELD_LIMIT + 1) as usize);
    }

    #[test]
    fn reset_restarts_spin_phase() {
        let mut b = Backoff::new();
        while !b.is_completed() {
            b.snooze();
        }
        b.reset();
        assert!(!b.is_completed());
    }
}
