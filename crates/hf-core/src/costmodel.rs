//! Per-task cost estimation for locality-aware placement.
//!
//! Algorithm 1's bin packing weighs tasks with the analytic
//! [`hf_gpu::CostModel`] (bandwidth × bytes, throughput × work units)
//! computed from the graph's *current* shape. That estimate drifts from
//! reality whenever host tasks resize buffers between epochs or declared
//! work units are inaccurate. The [`CostDb`] closes the loop: the
//! executor records each executed task's modeled duration (the actual
//! bytes moved / work performed, not the placement-time guess) into a
//! per-(graph, task) [`Ewma`], and the next placement recomputation
//! weighs groups with the refined estimates.
//!
//! Seeding: estimates may be pre-loaded from external history — e.g. the
//! task-duration history that `hf-timing` persists from profiler runs —
//! via [`CostDb::seed`], so the very first placement of a known workload
//! is already informed.

use hf_gpu::Ewma;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Default EWMA blend weight for new observations.
const DEFAULT_ALPHA: f64 = 0.3;

/// Thread-safe table of per-(graph, task) duration estimates in
/// nanoseconds of modeled device time.
#[derive(Debug, Default)]
pub struct CostDb {
    inner: Mutex<HashMap<(String, String), Ewma>>,
}

impl CostDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds an estimate from external history (e.g. a persisted timing
    /// profile). A task that already has *observed* samples keeps them;
    /// an absent or still-seed-only entry takes the new seed.
    pub fn seed(&self, graph: &str, task: &str, nanos: f64) {
        let mut m = self.inner.lock();
        let e = m
            .entry((graph.to_string(), task.to_string()))
            .or_insert_with(|| Ewma::seeded(nanos));
        if e.samples() == 0 {
            *e = Ewma::seeded(nanos);
        }
    }

    /// Records one executed task's modeled duration.
    pub fn observe(&self, graph: &str, task: &str, nanos: f64) {
        self.inner
            .lock()
            .entry((graph.to_string(), task.to_string()))
            .or_insert_with(|| Ewma::seeded(nanos))
            .observe(nanos, DEFAULT_ALPHA);
    }

    /// Current estimate for one task, if any.
    pub fn get(&self, graph: &str, task: &str) -> Option<f64> {
        self.inner
            .lock()
            .get(&(graph.to_string(), task.to_string()))
            .map(|e| e.value())
    }

    /// Snapshot of every estimate for one graph, keyed by task name —
    /// the form the placement routines consume (no locking inside the
    /// packing loop).
    pub fn snapshot_for(&self, graph: &str) -> TaskCosts {
        let m = self.inner.lock();
        TaskCosts {
            by_task: m
                .iter()
                .filter(|((g, _), _)| g == graph)
                .map(|((_, t), e)| (t.clone(), e.value()))
                .collect(),
        }
    }

    /// Sum of all refined estimates for one graph, with the number of
    /// tasks covered: `(total_nanos, tasks_covered)`. Allocation-free —
    /// this sits on the fleet's per-submission admission path.
    pub fn sum_for(&self, graph: &str) -> (f64, usize) {
        let m = self.inner.lock();
        let mut total = 0.0f64;
        let mut covered = 0usize;
        for ((g, _), e) in m.iter() {
            if g == graph {
                total += e.value().max(0.0);
                covered += 1;
            }
        }
        (total, covered)
    }

    /// Exports every estimate as `(graph, task, nanos)` triples — the
    /// form external history stores (e.g. `hf-timing`'s persisted task
    /// profiles) consume when capturing a finished run.
    pub fn export(&self) -> Vec<(String, String, f64)> {
        self.inner
            .lock()
            .iter()
            .map(|((g, t), e)| (g.clone(), t.clone(), e.value()))
            .collect()
    }

    /// Number of (graph, task) entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no estimates are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Immutable per-graph snapshot of refined task costs (nanoseconds),
/// consumed by [`crate::placement::device_placement_ext`]. Tasks absent
/// from the snapshot fall back to the analytic model.
#[derive(Debug, Clone, Default)]
pub struct TaskCosts {
    by_task: HashMap<String, f64>,
}

impl TaskCosts {
    /// Refined estimate for `task`, if one exists.
    pub fn get(&self, task: &str) -> Option<f64> {
        self.by_task.get(task).copied()
    }

    /// True when no task has a refined estimate.
    pub fn is_empty(&self) -> bool {
        self.by_task.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_then_observe() {
        let db = CostDb::new();
        db.seed("g", "t", 100.0);
        assert_eq!(db.get("g", "t"), Some(100.0));
        // First observation replaces the seed.
        db.observe("g", "t", 10.0);
        assert_eq!(db.get("g", "t"), Some(10.0));
        // A later seed does not clobber observed data.
        db.seed("g", "t", 500.0);
        assert_eq!(db.get("g", "t"), Some(10.0));
    }

    #[test]
    fn snapshot_scopes_by_graph() {
        let db = CostDb::new();
        db.observe("a", "t1", 5.0);
        db.observe("a", "t2", 7.0);
        db.observe("b", "t1", 9.0);
        let snap = db.snapshot_for("a");
        assert_eq!(snap.get("t1"), Some(5.0));
        assert_eq!(snap.get("t2"), Some(7.0));
        assert_eq!(snap.get("t3"), None);
        assert!(!snap.is_empty());
        assert!(db.snapshot_for("c").is_empty());
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn observe_converges() {
        let db = CostDb::new();
        for _ in 0..60 {
            db.observe("g", "t", 1000.0);
        }
        assert!((db.get("g", "t").unwrap() - 1000.0).abs() < 1e-6);
    }
}
