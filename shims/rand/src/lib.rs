//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! API subset it uses: seeded deterministic generators (`StdRng`,
//! `SmallRng`) with `gen_range` over integer and float ranges and
//! `gen_bool`. The generator is xoshiro256** seeded through splitmix64 —
//! high-quality and deterministic, though the streams differ from the real
//! crate's (no caller here depends on exact sequences, only on seeded
//! determinism).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `gen_range` can produce. Mirrors
/// `rand::distributions::uniform::SampleUniform`. The single blanket
/// `SampleRange` impl below (rather than per-type impls) is what lets
/// inference unify the range's element type with the result type at call
/// sites like `x + rng.gen_range(-0.8..0.8)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform sample from `[lo, hi)` (`hi` exclusive) or
    /// `[lo, hi]` when `inclusive`.
    fn sample_between<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "empty range in gen_range"
                );
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                lo: $t,
                hi: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// A range that knows how to sample a value of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// xoshiro256** core state shared by both named generators.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // splitmix64 stream expands the seed into four nonzero words.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// The workspace's standard seeded generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    /// A small, fast generator (same core as [`StdRng`] here).
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(2..=5u32);
            assert!((2..=5).contains(&w));
            let f = r.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
