//! Streaming epoch execution: the `Executor::run_stream` / `Session` /
//! `EpochFuture` surface.
//!
//! Covers the streaming contract end to end: per-epoch exactly-once
//! execution, double-buffered pull residency under per-epoch input
//! mutation, backpressure at the configured in-flight depth, mid-stream
//! cancellation of a single epoch, device loss mid-stream (the stream
//! keeps serving on the survivors), and `wait_for_all` quiescing busy
//! streams without blocking on idle open ones.

use heteroflow::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(30);

/// In/out saxpy-style lane: pull `x`, double on device, push into `out`,
/// then a host sink snapshots `out`. The sink is a *body* node (downstream
/// of the push), so the epoch gate orders snapshots by epoch.
struct Lane {
    g: Heteroflow,
    x: HostVec<i32>,
    snapshots: Arc<Mutex<Vec<Vec<i32>>>>,
    kernel_runs: Arc<AtomicUsize>,
}

fn lane(n: usize) -> Lane {
    let x: HostVec<i32> = HostVec::from_vec(vec![0; n]);
    let out: HostVec<i32> = HostVec::from_vec(vec![0; n]);
    let snapshots: Arc<Mutex<Vec<Vec<i32>>>> = Arc::default();
    let kernel_runs = Arc::new(AtomicUsize::new(0));

    let g = Heteroflow::new("stream_lane");
    let p = g.pull("pull_x", &x);
    let runs = Arc::clone(&kernel_runs);
    let k = g.kernel("double", &[&p], move |cfg, args| {
        let v = args.slice_mut::<i32>(0).unwrap();
        for t in cfg.threads() {
            if t < v.len() {
                v[t] *= 2;
            }
        }
        runs.fetch_add(1, Ordering::Relaxed);
    });
    k.cover(n, 64);
    let s = g.push("push_out", &p, &out);
    let snaps = Arc::clone(&snapshots);
    let out2 = out.clone();
    let sink = g.host("sink", move || {
        snaps.lock().unwrap().push(out2.read().clone());
    });
    p.precede(&k);
    k.precede(&s);
    s.precede(&sink);
    Lane {
        g,
        x,
        snapshots,
        kernel_runs,
    }
}

/// Every submitted epoch executes the graph exactly once, epochs are
/// numbered in submission order, and closing the stream releases the
/// graph for ordinary `run` calls (which queue behind the open session).
#[test]
fn epochs_execute_exactly_once() {
    const EPOCHS: usize = 8;
    let ex = Executor::new(2, 2);
    let l = lane(64);
    l.x.write().iter_mut().for_each(|v| *v = 3);

    let session = ex.run_stream(&l.g).expect("open stream");
    assert_eq!(session.depth(), 2);
    let futs: Vec<_> = (0..EPOCHS).map(|_| session.submit()).collect();
    for (e, f) in futs.iter().enumerate() {
        assert_eq!(f.epoch(), Some(e as u64));
        assert_eq!(f.run_id(), session.run_id());
        f.wait_timeout(DEADLINE)
            .unwrap_or_else(|| panic!("epoch {e} hung"))
            .unwrap_or_else(|e2| panic!("epoch {e} failed: {e2}"));
        assert!(f.is_done());
    }
    session.close();

    assert_eq!(l.kernel_runs.load(Ordering::Relaxed), EPOCHS);
    let snaps = l.snapshots.lock().unwrap();
    assert_eq!(snaps.len(), EPOCHS);
    for (e, s) in snaps.iter().enumerate() {
        assert!(
            s.iter().all(|&v| v == 6),
            "epoch {e} snapshot wrong: {:?}...",
            &s[..4]
        );
    }
    drop(snaps);

    // Closed stream rejects further epochs; the graph is free again.
    assert!(matches!(
        session.submit().wait(),
        Err(HfError::StreamClosed)
    ));
    ex.run(&l.g).wait().expect("post-close sequential run");
    assert_eq!(l.kernel_runs.load(Ordering::Relaxed), EPOCHS + 1);
}

/// Double-buffer correctness: each epoch's input is written via
/// `submit_with` while the previous epoch's kernels are still free to be
/// running, and every epoch must observe exactly its own inputs. The
/// transfer is chunked (small copy threshold) so epoch N+1's H2D really
/// is in flight while epoch N's body executes.
#[test]
fn double_buffered_inputs_never_leak_across_epochs() {
    const N: usize = 4096;
    const EPOCHS: usize = 12;
    let ex = Executor::builder(2, 2).copy_chunk_threshold(1024).build();
    let l = lane(N);

    let session = ex
        .run_stream_with(&l.g, StreamConfig { depth: 2 })
        .expect("open stream");
    let futs: Vec<_> = (0..EPOCHS)
        .map(|e| {
            let x = l.x.clone();
            session.submit_with(move || {
                x.write().iter_mut().for_each(|v| *v = e as i32 + 1);
            })
        })
        .collect();
    for (e, f) in futs.iter().enumerate() {
        f.wait_timeout(DEADLINE)
            .unwrap_or_else(|| panic!("epoch {e} hung"))
            .unwrap_or_else(|e2| panic!("epoch {e} failed: {e2}"));
    }
    session.close();

    let snaps = l.snapshots.lock().unwrap();
    assert_eq!(snaps.len(), EPOCHS);
    for (e, s) in snaps.iter().enumerate() {
        let want = 2 * (e as i32 + 1);
        assert!(
            s.iter().all(|&v| v == want),
            "epoch {e} read another epoch's inputs: got {:?}..., want {want}",
            &s[..4]
        );
    }
}

/// Backpressure: with depth 1, a second `submit` blocks until the
/// in-flight epoch completes.
#[test]
fn submit_applies_backpressure_at_depth() {
    let ex = Executor::new(2, 1);
    let release = Arc::new(AtomicBool::new(false));
    let x: HostVec<i32> = HostVec::from_vec(vec![1; 16]);

    let g = Heteroflow::new("backpressure");
    let p = g.pull("pull", &x);
    let rel = Arc::clone(&release);
    let k = g.kernel("block", &[&p], move |_cfg, _args| {
        while !rel.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    k.block_x(16);
    p.precede(&k);

    let session = ex
        .run_stream_with(&g, StreamConfig { depth: 1 })
        .expect("open stream");
    let f0 = session.submit();

    let second_submitted = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&second_submitted);
    let f1 = std::thread::scope(|scope| {
        let h = scope.spawn(|| {
            let f = session.submit();
            flag.store(true, Ordering::Release);
            f
        });
        // The first epoch's kernel is parked; depth 1 must hold the
        // second submission back the whole time.
        std::thread::sleep(Duration::from_millis(200));
        assert!(
            !second_submitted.load(Ordering::Acquire),
            "submit returned while depth-1 stream was full"
        );
        release.store(true, Ordering::Release);
        h.join().expect("submitter thread")
    });
    assert!(second_submitted.load(Ordering::Acquire));
    f0.wait_timeout(DEADLINE).expect("epoch 0 hung").unwrap();
    f1.wait_timeout(DEADLINE).expect("epoch 1 hung").unwrap();
    session.close();
}

/// Cancelling one mid-stream epoch resolves it with `Cancelled`, skips
/// its body, and leaves later epochs untouched.
#[test]
fn cancel_of_one_epoch_leaves_later_epochs_correct() {
    let ex = Executor::new(2, 1);
    let release = Arc::new(AtomicBool::new(false));
    let kernel_runs = Arc::new(AtomicUsize::new(0));
    let x: HostVec<i32> = HostVec::from_vec(vec![1; 16]);

    let g = Heteroflow::new("cancel_one");
    let p = g.pull("pull", &x);
    let rel = Arc::clone(&release);
    let runs = Arc::clone(&kernel_runs);
    let k = g.kernel("gate", &[&p], move |_cfg, _args| {
        // Epoch bodies are serialized by the gate, so the first body
        // execution is epoch 0's; park it until released.
        if runs.fetch_add(1, Ordering::SeqCst) == 0 {
            while !rel.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    });
    k.block_x(16);
    p.precede(&k);

    let session = ex
        .run_stream_with(&g, StreamConfig { depth: 3 })
        .expect("open stream");
    let f0 = session.submit();
    let f1 = session.submit();
    let f2 = session.submit();

    f1.cancel();
    release.store(true, Ordering::Release);

    assert_eq!(
        f0.wait_timeout(DEADLINE).expect("epoch 0 hung"),
        Ok(()),
        "epoch 0 must be unaffected"
    );
    assert_eq!(
        f1.wait_timeout(DEADLINE).expect("epoch 1 hung"),
        Err(HfError::Cancelled),
        "cancelled epoch resolves alone"
    );
    assert_eq!(
        f2.wait_timeout(DEADLINE).expect("epoch 2 hung"),
        Ok(()),
        "epochs after the cancelled one still run"
    );
    session.close();

    // Epoch 1's body never executed: only epochs 0 and 2 ran the kernel.
    assert_eq!(kernel_runs.load(Ordering::SeqCst), 2);
    assert!(ex.stats().snapshot().cancelled >= 1);
}

/// Chaos: a device dies mid-stream. In-flight epochs either fail over
/// within the epoch or fail alone with a structured error; the session
/// re-places subsequent epochs on the survivors and the stream keeps
/// serving — the final epoch must succeed.
#[test]
fn device_loss_mid_stream_keeps_serving_on_survivors() {
    const EPOCHS: usize = 10;
    let ex = Executor::builder(2, 2)
        .retry_policy(RetryPolicy::new(3))
        .build();
    ex.gpu_runtime()
        .set_fault_plan(Some(FaultPlan::seeded(0x57e4).lose_device(1, 3)));

    // Two independent lanes => two placement groups => both devices in
    // play, so the dying device is hosting live work.
    let bufs: Vec<HostVec<i32>> = (0..2).map(|_| HostVec::from_vec(vec![3; 64])).collect();
    let g = Heteroflow::new("stream_chaos");
    for (i, b) in bufs.iter().enumerate() {
        let p = g.pull(&format!("pull_{i}"), b);
        let k = g.kernel(&format!("double_{i}"), &[&p], |cfg, args| {
            let xs = args.slice_mut::<i32>(0).unwrap();
            for t in cfg.threads() {
                if t < xs.len() {
                    xs[t] *= 2;
                }
            }
        });
        k.block_x(64);
        p.precede(&k);
    }

    let session = ex.run_stream(&g).expect("open stream");
    let futs: Vec<_> = (0..EPOCHS).map(|_| session.submit()).collect();
    let results: Vec<_> = futs
        .iter()
        .enumerate()
        .map(|(e, f)| {
            f.wait_timeout(DEADLINE)
                .unwrap_or_else(|| panic!("epoch {e} hung after device loss"))
        })
        .collect();
    session.close();

    for (e, r) in results.iter().enumerate() {
        assert!(
            !matches!(r, Err(HfError::Cancelled)),
            "uncancelled epoch {e} ended Cancelled"
        );
    }
    assert_eq!(
        results.last().unwrap(),
        &Ok(()),
        "stream did not recover onto the survivor"
    );
    assert!(ex.stats().snapshot().devices_lost >= 1);
}

/// `wait_for_all` quiesces open streams: it returns only after every
/// submitted epoch finished — and an *idle* open session must not block
/// it.
#[test]
fn wait_for_all_quiesces_open_streams() {
    let ex = Executor::new(2, 2);
    let l = lane(256);
    l.x.write().iter_mut().for_each(|v| *v = 1);

    let session = ex.run_stream(&l.g).expect("open stream");
    let futs: Vec<_> = (0..6).map(|_| session.submit()).collect();
    ex.wait_for_all();
    for (e, f) in futs.iter().enumerate() {
        assert!(f.is_done(), "wait_for_all returned with epoch {e} in flight");
    }

    // The session is still open but idle: wait_for_all must not block.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            ex.wait_for_all();
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(5))
            .expect("wait_for_all blocked on an idle open stream");
    });
    session.close();
}
