//! Early/late (min/max) timing and hold checks.
//!
//! Setup analysis (the [`crate::sta`] sweep) uses *latest* arrivals
//! against the clock period; hold analysis uses *earliest* arrivals
//! against hold requirements at the endpoints. Under on-chip variation
//! every gate has an early and a late delay (the OCV split the CPPR
//! machinery also uses); a complete timer propagates both.

use crate::netlist::Circuit;
use crate::sta::gate_delay;
use crate::views::View;

/// Early/late arrival pair per gate, plus hold slack at endpoints.
#[derive(Debug, Clone)]
pub struct EarlyLateReport {
    /// Earliest possible arrival per gate (min path, early delays).
    pub arrival_early: Vec<f32>,
    /// Latest possible arrival per gate (max path, late delays).
    pub arrival_late: Vec<f32>,
    /// Hold slack per primary output: `arrival_early - hold_requirement`.
    pub hold_slack: Vec<f32>,
    /// Worst (most negative) hold slack, 0 when met.
    pub whs: f32,
}

/// Early/late delay of a gate under the view's OCV split.
#[inline]
pub fn gate_delay_early_late(c: &Circuit, g: usize, view: &View) -> (f32, f32) {
    let nominal = gate_delay(c, g, view);
    let ocv = view.corner.ocv;
    (nominal * (1.0 - ocv), nominal * (1.0 + ocv))
}

/// Propagates early (min over fanins, early delays) and late (max over
/// fanins, late delays) arrivals, and checks hold at the endpoints.
///
/// `hold_requirement` is the minimum early arrival an endpoint must have
/// (clock-skew + flop hold time in a real flow).
pub fn run_early_late(c: &Circuit, view: &View, hold_requirement: f32) -> EarlyLateReport {
    let n = c.num_gates();
    let mut early = vec![0.0f32; n];
    let mut late = vec![0.0f32; n];
    for level in &c.levels {
        for &g in level {
            let g = g as usize;
            let (de, dl) = gate_delay_early_late(c, g, view);
            let (mut min_in, mut max_in) = (f32::INFINITY, 0.0f32);
            for &f in &c.fanin[g] {
                min_in = min_in.min(early[f as usize]);
                max_in = max_in.max(late[f as usize]);
            }
            if !min_in.is_finite() {
                min_in = 0.0; // primary input
            }
            early[g] = min_in + de;
            late[g] = max_in + dl;
        }
    }
    let hold_slack: Vec<f32> = c
        .primary_outputs
        .iter()
        .map(|&po| early[po as usize] - hold_requirement)
        .collect();
    let whs = hold_slack.iter().cloned().fold(0.0f32, f32::min);
    EarlyLateReport {
        arrival_early: early,
        arrival_late: late,
        hold_slack,
        whs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitConfig;
    use crate::sta::run_sta;
    use crate::views::{make_views, Corner, Mode};

    fn view(ocv: f32) -> View {
        View {
            corner: Corner {
                name: "t".into(),
                delay_scale: 1.0,
                ocv,
            },
            mode: Mode {
                name: "m".into(),
                clock_period: 1.0,
            },
            seed: 0,
        }
    }

    #[test]
    fn early_never_exceeds_late() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 600,
            ..Default::default()
        });
        let r = run_early_late(&c, &view(0.1), 0.0);
        for g in 0..c.num_gates() {
            assert!(
                r.arrival_early[g] <= r.arrival_late[g] + 1e-6,
                "gate {g}: early {} > late {}",
                r.arrival_early[g],
                r.arrival_late[g]
            );
        }
    }

    #[test]
    fn zero_ocv_late_equals_setup_arrival() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 400,
            ..Default::default()
        });
        let v = view(0.0);
        let el = run_early_late(&c, &v, 0.0);
        let setup = run_sta(&c, &v);
        for g in 0..c.num_gates() {
            assert!(
                (el.arrival_late[g] - setup.arrival[g]).abs() < 1e-5,
                "gate {g}"
            );
        }
    }

    #[test]
    fn early_is_min_path_reference() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 300,
            ..Default::default()
        });
        let v = view(0.08);
        let r = run_early_late(&c, &v, 0.0);
        // Reference min-path recurrence (ids are topological).
        let mut reference = vec![0.0f32; c.num_gates()];
        #[allow(clippy::needless_range_loop)] // builds reference[g] from reference[<g]
        for g in 0..c.num_gates() {
            let (de, _) = gate_delay_early_late(&c, g, &v);
            let min_in = c.fanin[g]
                .iter()
                .map(|&f| reference[f as usize])
                .fold(f32::INFINITY, f32::min);
            reference[g] = if min_in.is_finite() { min_in } else { 0.0 } + de;
        }
        for (g, (a, want)) in r.arrival_early.iter().zip(&reference).enumerate() {
            assert!((a - want).abs() < 1e-5, "gate {g}");
        }
    }

    #[test]
    fn hold_violations_appear_with_high_requirement() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 400,
            ..Default::default()
        });
        let v = &make_views(1, 1.0)[0];
        let met = run_early_late(&c, v, 0.0);
        assert_eq!(met.whs, 0.0, "no hold check, no violation");
        // Require more early delay than the fastest endpoint has.
        let min_early = met
            .hold_slack
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        let violated = run_early_late(&c, v, min_early + 0.1);
        assert!(violated.whs < 0.0);
        assert!((violated.whs - (-0.1)).abs() < 1e-4);
    }
}
