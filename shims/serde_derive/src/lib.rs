//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for plain (non-generic) structs with
//! named fields — the only shape this workspace derives — by walking the
//! raw token stream instead of pulling in `syn`/`quote` (the build
//! container has no network access). The expansion targets the `Serialize`
//! trait of the sibling `serde` shim, which renders into its JSON tree.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // The struct name is the ident following the `struct` keyword.
    let mut name = None;
    for pair in tokens.windows(2) {
        if let (TokenTree::Ident(kw), TokenTree::Ident(id)) = (&pair[0], &pair[1]) {
            if kw.to_string() == "struct" {
                name = Some(id.to_string());
                break;
            }
        }
    }
    let name = name.expect("derive(Serialize) shim supports only structs");

    // The field list is the last brace-delimited group at top level.
    let body = tokens
        .iter()
        .rev()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("derive(Serialize) shim supports only named-field structs");

    let mut inserts = String::new();
    for field in field_names(body) {
        inserts.push_str(&format!(
            "m.insert({:?}.to_string(), serde::Serialize::to_value(&self.{field}));\n",
            field
        ));
    }

    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::json::Value {{\n\
                 let mut m = serde::json::Map::new();\n\
                 {inserts}\
                 serde::json::Value::Object(m)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Extracts field identifiers from the body of a named-field struct:
/// for each comma-separated chunk (tracking `<...>` depth so generic
/// argument commas don't split), the field name is the last ident before
/// the first top-level `:`.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident = None;
    let mut named = false;
    for t in body {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && !named => {
                    if let Some(id) = last_ident.take() {
                        fields.push(id);
                        named = true;
                    }
                }
                ',' if angle_depth == 0 => {
                    named = false;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if !named => last_ident = Some(id.to_string()),
            _ => {}
        }
    }
    fields
}
