//! In-repo shim of the **loom** concurrency model checker.
//!
//! Implements the API subset `hf-sync` uses — [`model`], [`thread::spawn`]
//! / [`thread::yield_now`], and the [`sync::atomic`] types — on top of a
//! deterministic cooperative scheduler:
//!
//! * Inside [`model`], every atomic operation (and every spawn/join/yield)
//!   is a *scheduling point*: the executing thread parks and a controller
//!   picks which runnable thread proceeds next.
//! * The controller explores the tree of scheduling decisions with an
//!   exhaustive depth-first search: each execution replays a decision
//!   prefix, runs the model to completion, then backtracks to the deepest
//!   decision with an untried alternative. Exploration is fully
//!   deterministic — no randomness, no timing dependence.
//! * `thread::yield_now` carries loom's meaning: the calling thread is
//!   deprioritized until some *other* thread has been scheduled, which is
//!   what lets spin-wait loops (`Backoff::snooze`) terminate instead of
//!   being rescheduled forever.
//!
//! Scope and limitations (vs. real loom): interleavings are explored at
//! atomic-operation granularity under a sequentially-consistent-hardware
//! model; weak-memory reorderings are *not* simulated and `UnsafeCell`
//! accesses are not instrumented. Assertions inside the model (and
//! deadlocks: no runnable thread while some are unfinished) are reported
//! with the offending decision path. Outside a [`model`] call every type
//! degrades to its `std` counterpart with zero overhead, so a crate built
//! with its `loom` feature enabled still behaves normally in ordinary
//! code.
//!
//! Exploration is bounded by `LOOM_MAX_ITER` executions (default 200 000)
//! and 100 000 scheduling points per execution; models should keep the
//! per-thread operation count small (a handful of atomics per thread keeps
//! the schedule space in the low thousands).

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

const MAX_STEPS_PER_EXEC: usize = 100_000;
const DEFAULT_MAX_ITER: usize = 200_000;
const ABORT_MSG: &str = "loom model aborted (another thread failed)";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Registered; its OS thread has not parked at the initial point yet.
    Starting,
    /// Currently granted the virtual CPU.
    Running,
    /// Parked at a scheduling point, ready to be granted.
    Paused,
    /// Parked in `join` waiting for the given thread to finish.
    Blocked(usize),
    /// Done (returned or panicked).
    Finished,
}

struct ThreadState {
    status: Status,
    /// Set by `yield_now`: not schedulable while another thread can run.
    yielded: bool,
}

struct State {
    threads: Vec<ThreadState>,
    /// Grant token: which thread may transition Paused -> Running.
    active: Option<usize>,
    /// Decision prefix replayed this execution.
    replay: Vec<usize>,
    cursor: usize,
    /// Decisions taken this execution: (choice index, option count).
    path: Vec<(usize, usize)>,
    steps: usize,
    abort: bool,
    failure: Option<String>,
    os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
}

struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

impl Scheduler {
    fn new(replay: Vec<usize>) -> Self {
        Self {
            state: Mutex::new(State {
                threads: Vec::new(),
                active: None,
                replay,
                cursor: 0,
                path: Vec::new(),
                steps: 0,
                abort: false,
                failure: None,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicking model thread poisons the mutex by design; the
        // controller still needs the state to tear the execution down.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(ThreadState {
            status: Status::Starting,
            yielded: false,
        });
        s.os_handles.push(None);
        s.threads.len() - 1
    }

    /// Parks `me` at a scheduling point and blocks until granted.
    /// `block_on = Some(t)` parks as joining thread `t`; `yielded` applies
    /// loom's yield semantics.
    fn park(&self, me: usize, block_on: Option<usize>, yielded: bool) {
        let mut s = self.lock();
        s.steps += 1;
        if s.steps > MAX_STEPS_PER_EXEC && !s.abort {
            s.abort = true;
            s.failure = Some(format!(
                "model execution exceeded {MAX_STEPS_PER_EXEC} scheduling points (livelock?)"
            ));
        }
        if s.abort {
            drop(s);
            self.cv.notify_all();
            panic!("{ABORT_MSG}");
        }
        s.threads[me].status = match block_on {
            Some(t) => Status::Blocked(t),
            None => Status::Paused,
        };
        s.threads[me].yielded = yielded;
        self.cv.notify_all();
        loop {
            if s.abort {
                drop(s);
                self.cv.notify_all();
                panic!("{ABORT_MSG}");
            }
            if s.active == Some(me) {
                s.active = None;
                debug_assert_eq!(s.threads[me].status, Status::Running);
                return;
            }
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self, me: usize) {
        let mut s = self.lock();
        s.threads[me].status = Status::Finished;
        self.cv.notify_all();
    }

    fn record_failure(&self, msg: String) {
        let mut s = self.lock();
        s.abort = true;
        if s.failure.is_none() {
            s.failure = Some(msg);
        }
        self.cv.notify_all();
    }

    /// Drives one execution to completion; returns (path, failure).
    fn run_controller(&self) -> (Vec<(usize, usize)>, Option<String>) {
        let mut s = self.lock();
        loop {
            // Wait for every live thread to park (or finish).
            while s.active.is_some()
                || s.threads
                    .iter()
                    .any(|t| matches!(t.status, Status::Running | Status::Starting))
            {
                s = self
                    .cv
                    .wait(s)
                    .unwrap_or_else(|e| e.into_inner());
            }
            if s.threads.iter().all(|t| t.status == Status::Finished) {
                break;
            }
            let ready = |t: &ThreadState, threads: &[ThreadState]| match t.status {
                Status::Paused => true,
                Status::Blocked(j) => threads[j].status == Status::Finished,
                _ => false,
            };
            let mut runnable: Vec<usize> = (0..s.threads.len())
                .filter(|&i| ready(&s.threads[i], &s.threads) && !s.threads[i].yielded)
                .collect();
            if runnable.is_empty() {
                // Only yielded threads left: schedulable after all, to
                // avoid declaring a spin loop a deadlock.
                runnable = (0..s.threads.len())
                    .filter(|&i| ready(&s.threads[i], &s.threads))
                    .collect();
            }
            if runnable.is_empty() {
                if s.abort {
                    // Abort already in flight: wake parked threads so they
                    // unwind, then keep draining.
                    self.cv.notify_all();
                    continue;
                }
                let held: Vec<usize> = (0..s.threads.len())
                    .filter(|&i| s.threads[i].status != Status::Finished)
                    .collect();
                s.abort = true;
                s.failure = Some(format!("deadlock: threads {held:?} cannot make progress"));
                self.cv.notify_all();
                continue;
            }
            let choice = if s.cursor < s.replay.len() {
                s.replay[s.cursor].min(runnable.len() - 1)
            } else {
                0
            };
            s.cursor += 1;
            let options = runnable.len();
            s.path.push((choice, options));
            let tid = runnable[choice];
            for (i, t) in s.threads.iter_mut().enumerate() {
                if i != tid {
                    // Someone else is about to run: yielded threads get
                    // schedulable again afterwards.
                    t.yielded = false;
                }
            }
            s.threads[tid].status = Status::Running;
            s.threads[tid].yielded = false;
            s.active = Some(tid);
            self.cv.notify_all();
        }
        let path = s.path.clone();
        let failure = s.failure.take();
        let handles: Vec<_> = s.os_handles.iter_mut().map(|h| h.take()).collect();
        drop(s);
        for h in handles.into_iter().flatten() {
            let _ = h.join();
        }
        (path, failure)
    }
}

/// Entry point of a model-thread body: sets the thread-local context,
/// parks for the first grant, runs `f` under `catch_unwind`, reports.
fn run_model_thread(sched: Arc<Scheduler>, tid: usize, f: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), tid)));
    sched.park(tid, None, false);
    let result = catch_unwind(AssertUnwindSafe(f));
    if let Err(e) = result {
        let msg = e
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "model thread panicked".to_string());
        if msg != ABORT_MSG {
            sched.record_failure(format!("thread {tid} panicked: {msg}"));
        }
    }
    sched.finish(tid);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Checks `f` under every (bounded) interleaving of its threads' atomic
/// operations. Panics — with the failing decision path — if any execution
/// panics, fails an assertion, or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let max_iter = std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_ITER);
    let mut replay: Vec<usize> = Vec::new();
    let mut iters = 0usize;
    loop {
        iters += 1;
        let sched = Arc::new(Scheduler::new(replay.clone()));
        let tid0 = sched.register();
        debug_assert_eq!(tid0, 0);
        let (s0, f0) = (Arc::clone(&sched), Arc::clone(&f));
        let h0 = std::thread::Builder::new()
            .name("loom-main".into())
            .spawn(move || run_model_thread(s0, tid0, move || f0()))
            .expect("spawn loom main thread");
        sched.lock().os_handles[tid0] = Some(h0);
        let (path, failure) = sched.run_controller();
        if let Some(msg) = failure {
            panic!(
                "loom: model failed on execution {iters}: {msg}\n  \
                 decision path: {:?}",
                path.iter().map(|p| p.0).collect::<Vec<_>>()
            );
        }
        // Depth-first advance: bump the deepest decision with an untried
        // alternative, drop everything below it.
        let mut next = path;
        loop {
            match next.last().copied() {
                None => return, // schedule space exhausted
                Some((c, o)) if c + 1 < o => {
                    replay = next.iter().map(|p| p.0).collect();
                    *replay.last_mut().expect("nonempty") = c + 1;
                    break;
                }
                Some(_) => {
                    next.pop();
                }
            }
        }
        if iters >= max_iter {
            eprintln!(
                "loom: stopping after {iters} executions (LOOM_MAX_ITER); \
                 exploration is bounded, not exhaustive"
            );
            return;
        }
    }
}

/// One scheduling point for the current thread, if inside a model.
pub(crate) fn sched_point() {
    if let Some((sched, me)) = ctx() {
        sched.park(me, None, false);
    }
}

/// Thread spawn/join/yield mirroring `std::thread` inside a model.
pub mod thread {
    use super::*;
    use std::marker::PhantomData;

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            sched: Arc<Scheduler>,
            tid: usize,
            result: Arc<Mutex<Option<T>>>,
        },
    }

    /// Handle to a spawned (model or OS) thread.
    pub struct JoinHandle<T> {
        inner: Inner<T>,
        _t: PhantomData<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread and returns its result, like
        /// `std::thread::JoinHandle::join`.
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Inner::Std(h) => h.join(),
                Inner::Model { sched, tid, result } => {
                    let me = ctx().map(|(_, me)| me).expect("join outside model thread");
                    sched.park(me, Some(tid), false);
                    match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                        Some(v) => Ok(v),
                        None => Err(Box::new("model thread panicked")),
                    }
                }
            }
        }
    }

    /// Spawns a thread participating in the current model (or a plain OS
    /// thread outside one).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            None => JoinHandle {
                inner: Inner::Std(std::thread::spawn(f)),
                _t: PhantomData,
            },
            Some((sched, me)) => {
                let tid = sched.register();
                let result = Arc::new(Mutex::new(None));
                let (s2, r2) = (Arc::clone(&sched), Arc::clone(&result));
                let os = std::thread::Builder::new()
                    .name(format!("loom-{tid}"))
                    .spawn(move || {
                        run_model_thread(Arc::clone(&s2), tid, move || {
                            let v = f();
                            *r2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        })
                    })
                    .expect("spawn loom thread");
                sched.lock().os_handles[tid] = Some(os);
                // The spawn itself is a scheduling point in the parent.
                sched.park(me, None, false);
                JoinHandle {
                    inner: Inner::Model { sched, tid, result },
                    _t: PhantomData,
                }
            }
        }
    }

    /// Loom yield: deprioritizes the calling thread until another thread
    /// has been scheduled — the required hint inside spin-wait loops.
    pub fn yield_now() {
        match ctx() {
            None => std::thread::yield_now(),
            Some((sched, me)) => sched.park(me, None, true),
        }
    }
}

/// `std::hint` stand-ins.
pub mod hint {
    /// Spin hint: a deprioritizing yield inside a model (a raw spin would
    /// never let the scheduler run another thread), a plain CPU hint
    /// outside.
    pub fn spin_loop() {
        if super::ctx().is_some() {
            super::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// `std::sync` stand-ins (atomics only — the subset hf-sync models use).
pub mod sync {
    /// Atomic types whose every operation is a model scheduling point.
    pub mod atomic {
        use crate::sched_point;
        pub use std::sync::atomic::Ordering;

        /// An atomic fence that is also a scheduling point.
        pub fn fence(order: Ordering) {
            sched_point();
            std::sync::atomic::fence(order);
        }

        macro_rules! int_atomic {
            ($(#[$doc:meta])* $name:ident, $std:ty, $int:ty) => {
                $(#[$doc])*
                #[repr(transparent)]
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates a new atomic.
                    pub const fn new(v: $int) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Atomic load (scheduling point).
                    pub fn load(&self, o: Ordering) -> $int {
                        sched_point();
                        self.0.load(o)
                    }

                    /// Atomic store (scheduling point).
                    pub fn store(&self, v: $int, o: Ordering) {
                        sched_point();
                        self.0.store(v, o)
                    }

                    /// Atomic swap (scheduling point).
                    pub fn swap(&self, v: $int, o: Ordering) -> $int {
                        sched_point();
                        self.0.swap(v, o)
                    }

                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, v: $int, o: Ordering) -> $int {
                        sched_point();
                        self.0.fetch_add(v, o)
                    }

                    /// Atomic subtract, returning the previous value.
                    pub fn fetch_sub(&self, v: $int, o: Ordering) -> $int {
                        sched_point();
                        self.0.fetch_sub(v, o)
                    }

                    /// Atomic bitwise or, returning the previous value.
                    pub fn fetch_or(&self, v: $int, o: Ordering) -> $int {
                        sched_point();
                        self.0.fetch_or(v, o)
                    }

                    /// Atomic bitwise and, returning the previous value.
                    pub fn fetch_and(&self, v: $int, o: Ordering) -> $int {
                        sched_point();
                        self.0.fetch_and(v, o)
                    }

                    /// Atomic compare-exchange (scheduling point).
                    pub fn compare_exchange(
                        &self,
                        cur: $int,
                        new: $int,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$int, $int> {
                        sched_point();
                        self.0.compare_exchange(cur, new, ok, err)
                    }

                    /// Weak compare-exchange (scheduling point; the shim
                    /// never fails spuriously).
                    pub fn compare_exchange_weak(
                        &self,
                        cur: $int,
                        new: $int,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$int, $int> {
                        sched_point();
                        self.0.compare_exchange_weak(cur, new, ok, err)
                    }

                    /// Non-atomic access through exclusive borrow.
                    pub fn get_mut(&mut self) -> &mut $int {
                        self.0.get_mut()
                    }

                    /// Unwraps to the plain integer.
                    pub fn into_inner(self) -> $int {
                        self.0.into_inner()
                    }
                }
            };
        }

        int_atomic!(
            /// `AtomicU64` whose operations are model scheduling points.
            AtomicU64,
            std::sync::atomic::AtomicU64,
            u64
        );
        int_atomic!(
            /// `AtomicU32` whose operations are model scheduling points.
            AtomicU32,
            std::sync::atomic::AtomicU32,
            u32
        );
        int_atomic!(
            /// `AtomicUsize` whose operations are model scheduling points.
            AtomicUsize,
            std::sync::atomic::AtomicUsize,
            usize
        );

        /// `AtomicBool` whose operations are model scheduling points.
        #[repr(transparent)]
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic flag.
            pub const fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load (scheduling point).
            pub fn load(&self, o: Ordering) -> bool {
                sched_point();
                self.0.load(o)
            }

            /// Atomic store (scheduling point).
            pub fn store(&self, v: bool, o: Ordering) {
                sched_point();
                self.0.store(v, o)
            }

            /// Atomic swap (scheduling point).
            pub fn swap(&self, v: bool, o: Ordering) -> bool {
                sched_point();
                self.0.swap(v, o)
            }
        }

        /// `AtomicPtr` whose operations are model scheduling points.
        #[repr(transparent)]
        #[derive(Debug)]
        pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

        impl<T> Default for AtomicPtr<T> {
            fn default() -> Self {
                Self::new(std::ptr::null_mut())
            }
        }

        impl<T> AtomicPtr<T> {
            /// Creates a new atomic pointer.
            pub const fn new(p: *mut T) -> Self {
                Self(std::sync::atomic::AtomicPtr::new(p))
            }

            /// Atomic load (scheduling point).
            pub fn load(&self, o: Ordering) -> *mut T {
                sched_point();
                self.0.load(o)
            }

            /// Atomic store (scheduling point).
            pub fn store(&self, p: *mut T, o: Ordering) {
                sched_point();
                self.0.store(p, o)
            }

            /// Atomic swap (scheduling point).
            pub fn swap(&self, p: *mut T, o: Ordering) -> *mut T {
                sched_point();
                self.0.swap(p, o)
            }

            /// Atomic compare-exchange (scheduling point).
            pub fn compare_exchange(
                &self,
                cur: *mut T,
                new: *mut T,
                ok: Ordering,
                err: Ordering,
            ) -> Result<*mut T, *mut T> {
                sched_point();
                self.0.compare_exchange(cur, new, ok, err)
            }

            /// Non-atomic access through exclusive borrow.
            pub fn get_mut(&mut self) -> &mut *mut T {
                self.0.get_mut()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;

    #[test]
    fn explores_both_orders_of_two_writers() {
        // Two threads store distinct values; across the exploration both
        // final values must be observed.
        let seen_1 = Arc::new(StdAtomicUsize::new(0));
        let seen_2 = Arc::new(StdAtomicUsize::new(0));
        let (s1, s2) = (Arc::clone(&seen_1), Arc::clone(&seen_2));
        model(move || {
            let x = Arc::new(AtomicUsize::new(0));
            let xa = Arc::clone(&x);
            let xb = Arc::clone(&x);
            let a = thread::spawn(move || xa.store(1, Ordering::SeqCst));
            let b = thread::spawn(move || xb.store(2, Ordering::SeqCst));
            a.join().unwrap();
            b.join().unwrap();
            match x.load(Ordering::SeqCst) {
                1 => s1.store(1, std::sync::atomic::Ordering::SeqCst),
                2 => s2.store(1, std::sync::atomic::Ordering::SeqCst),
                v => panic!("impossible final value {v}"),
            }
        });
        assert_eq!(seen_1.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(seen_2.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn finds_lost_update() {
        // The classic non-atomic increment race: load; add; store. The
        // checker must find the interleaving where one update is lost.
        let result = catch_unwind(|| {
            model(|| {
                let x = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let x = Arc::clone(&x);
                        thread::spawn(move || {
                            let v = x.load(Ordering::SeqCst);
                            x.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(result.is_err(), "model checker missed the lost update");
    }

    #[test]
    fn cas_increment_has_no_lost_update() {
        model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || loop {
                        let v = x.load(Ordering::SeqCst);
                        if x.compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            break;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(x.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn yield_lets_spin_loops_terminate() {
        model(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            let h = thread::spawn(move || f2.store(1, Ordering::SeqCst));
            while flag.load(Ordering::SeqCst) == 0 {
                thread::yield_now();
            }
            h.join().unwrap();
        });
    }

    #[test]
    fn outside_model_atomics_pass_through() {
        let x = AtomicUsize::new(5);
        assert_eq!(x.load(Ordering::SeqCst), 5);
        x.store(7, Ordering::SeqCst);
        assert_eq!(x.swap(9, Ordering::SeqCst), 7);
        let h = thread::spawn(|| 42);
        assert_eq!(h.join().unwrap(), 42);
    }
}
