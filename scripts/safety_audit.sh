#!/usr/bin/env bash
# Audits the unsafe code in the lock-free substrate (hf-sync) and the GPU
# substrate (hf-gpu): every `unsafe` block, `unsafe impl`, and `unsafe
# trait` must carry a `// SAFETY:` comment — and every `unsafe fn` a
# `/// # Safety` doc section — within the preceding few lines. Exits
# non-zero listing each uncommented site.
#
# Usage: scripts/safety_audit.sh [extra crate dirs...]
set -euo pipefail

cd "$(dirname "$0")/.."

dirs=(crates/hf-sync/src crates/hf-gpu/src "$@")

fail=0
for f in $(find "${dirs[@]}" -name '*.rs' | sort); do
  if ! awk '
    FNR == 1 { last_safety = -100 }
    /SAFETY:|# Safety/ { last_safety = FNR }
    {
      line = $0
      sub(/^[[:space:]]+/, "", line)
      # Skip comment lines (the keyword in prose is not a site).
      if (line ~ /^\/\//) next
      # An unsafe site: the keyword opening a block, fn, impl, or trait.
      if (line !~ /(^|[^[:alnum:]_"])unsafe([[:space:]]|\{)/) next
      if (FNR - last_safety > 12) {
        printf "%s:%d: unsafe without a SAFETY comment\n    %s\n", FILENAME, FNR, $0
        bad = 1
      }
    }
    END { exit bad }
  ' "$f"; then
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "safety audit FAILED: add // SAFETY: comments to the sites above" >&2
  exit 1
fi
echo "safety audit OK: all unsafe sites in ${dirs[*]} are documented"
