//! Structured task-lifecycle events: the executor's flight-data stream.
//!
//! The scheduler's observable surface used to be spans (begin/end pairs
//! around task bodies — [`crate::observer::TraceCollector`]) and
//! aggregate counters ([`crate::stats::ExecutorStats`]). Neither answers
//! *where is this run right now*: spans only exist once a body has both
//! started and ended, and counters have no per-task identity. Lifecycle
//! events fill that gap — every scheduling transition of every task
//! (ready → started → dispatched → finished / failed / retried, plus
//! run-level start/end/failover markers) is emitted as one structured
//! [`LifecycleEvent`] through [`crate::ExecutorObserver::on_lifecycle`].
//!
//! Emission shares the observer fast path: when no registered observer
//! reports [`crate::ExecutorObserver::is_active`], the executor skips
//! event construction entirely (no timestamp, no allocation, no virtual
//! call beyond the gate itself), so a binary with the flight recorder
//! compiled in but disabled pays the same near-zero cost as one without.
//!
//! Timestamps are nanoseconds since a process-wide monotonic epoch
//! ([`lifecycle_now_ns`]), so events from worker threads, device engine
//! threads, and the submission path order on one clock.

use crate::graph::TaskKind;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide monotonic epoch shared by every lifecycle timestamp.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide lifecycle epoch.
pub fn lifecycle_now_ns() -> u64 {
    Instant::now().saturating_duration_since(epoch()).as_nanos() as u64
}

/// Which scheduling transition a [`LifecycleEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LifecyclePhase {
    /// A submission was accepted (run-level; `task` is `None`).
    RunStart,
    /// A static-analysis diagnostic for the submitted graph (run-level;
    /// one event per finding, emitted right after `RunStart` under
    /// [`crate::LintPolicy::Warn`]). `detail` carries the rendered
    /// diagnostic (`"HF0xx [task, ...]: message"`); `ok` is `false` for
    /// Error-severity findings.
    Lint,
    /// A task's dependencies were satisfied and its token entered the
    /// scheduling queues. Re-emitted when a retry re-queues the task.
    Ready,
    /// A worker picked the task's token and began running/dispatching it.
    Started,
    /// A GPU task's ops were enqueued on a device stream (one event per
    /// fused chain member, all carrying the chain head in `chain`).
    Dispatched,
    /// The task finished this round (`ok` tells success).
    Finished,
    /// A task body failed and the failure was terminal for this attempt
    /// (the run fails, or a device failover was requested).
    Failed,
    /// A failed attempt was re-scheduled by the retry policy.
    Retried,
    /// A device failover re-placed the run's unfinished tasks
    /// (run-level; `task` is `None`).
    Failover,
    /// The submission completed (run-level; `ok` tells success, `detail`
    /// carries the error for failed/cancelled runs).
    RunEnd,
    /// A streaming epoch was admitted for execution (run-level; `task` is
    /// `None`, `epoch` carries the epoch index within the stream).
    EpochStart,
    /// A streaming epoch completed (run-level; `ok` tells success,
    /// `detail` carries the error for failed/cancelled epochs, `epoch`
    /// the epoch index).
    EpochEnd,
}

impl LifecyclePhase {
    /// Stable lowercase name used in dumps and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            LifecyclePhase::RunStart => "run_start",
            LifecyclePhase::Lint => "lint",
            LifecyclePhase::Ready => "ready",
            LifecyclePhase::Started => "started",
            LifecyclePhase::Dispatched => "dispatched",
            LifecyclePhase::Finished => "finished",
            LifecyclePhase::Failed => "failed",
            LifecyclePhase::Retried => "retried",
            LifecyclePhase::Failover => "failover",
            LifecyclePhase::RunEnd => "run_end",
            LifecyclePhase::EpochStart => "epoch_start",
            LifecyclePhase::EpochEnd => "epoch_end",
        }
    }
}

impl std::fmt::Display for LifecyclePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured task-lifecycle transition.
///
/// Shared strings are `Arc<str>` so a bounded ring of events clones
/// without reallocating the names.
#[derive(Debug, Clone)]
pub struct LifecycleEvent {
    /// Process-unique id of the submission this event belongs to
    /// (see `RunFuture::run_id`).
    pub run_id: u64,
    /// Name of the submitted graph.
    pub graph: Arc<str>,
    /// Which transition happened.
    pub phase: LifecyclePhase,
    /// Node index within the frozen graph; `None` for run-level events.
    pub task: Option<u32>,
    /// Task name (graph name for run-level events).
    pub name: Arc<str>,
    /// Task kind; `None` for run-level events.
    pub kind: Option<TaskKind>,
    /// Device the task is placed on, when it is a GPU task.
    pub device: Option<u32>,
    /// Worker thread that produced the event, when on a worker.
    pub worker: Option<u32>,
    /// Head node of the fused GPU chain this task was dispatched with
    /// (equal to `task` for the head itself); `None` outside chains.
    pub chain: Option<u32>,
    /// Bytes this task moves across the PCIe link (pull/push tasks;
    /// `0` otherwise).
    pub bytes: u64,
    /// Success flag for `Finished`/`RunEnd`; `true` elsewhere.
    pub ok: bool,
    /// Error rendering for `Failed`/`Retried` and failed `RunEnd`s.
    pub detail: Option<Arc<str>>,
    /// Epoch index within a stream; `None` for one-shot runs.
    pub epoch: Option<u64>,
    /// Tenant the submission is attributed to, when it entered through a
    /// [`crate::Fleet`]; `None` for direct submissions.
    pub tenant: Option<Arc<str>>,
    /// Nanoseconds since the process lifecycle epoch.
    pub t_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = lifecycle_now_ns();
        let b = lifecycle_now_ns();
        assert!(b >= a);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(LifecyclePhase::RunStart.name(), "run_start");
        assert_eq!(LifecyclePhase::Ready.name(), "ready");
        assert_eq!(LifecyclePhase::Dispatched.to_string(), "dispatched");
        assert_eq!(LifecyclePhase::RunEnd.name(), "run_end");
        assert_eq!(LifecyclePhase::EpochStart.name(), "epoch_start");
        assert_eq!(LifecyclePhase::EpochEnd.name(), "epoch_end");
    }

    #[test]
    fn events_clone_shared_names() {
        let name: Arc<str> = Arc::from("saxpy");
        let ev = LifecycleEvent {
            run_id: 7,
            graph: Arc::clone(&name),
            phase: LifecyclePhase::Finished,
            task: Some(3),
            name: Arc::clone(&name),
            kind: Some(TaskKind::Kernel),
            device: Some(1),
            worker: Some(0),
            chain: Some(2),
            bytes: 4096,
            ok: true,
            detail: None,
            epoch: None,
            tenant: None,
            t_ns: lifecycle_now_ns(),
        };
        let c = ev.clone();
        assert!(Arc::ptr_eq(&ev.name, &c.name));
        assert_eq!(c.phase, LifecyclePhase::Finished);
        assert_eq!(c.run_id, 7);
    }
}
