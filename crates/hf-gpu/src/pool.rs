//! Per-device pooled memory allocator.
//!
//! Pull tasks allocate device memory on every execution; the paper
//! amortizes this with a per-GPU pool over a buddy allocator (§III-C).
//! [`MemoryPool`] is that pool: a thread-safe wrapper over
//! [`crate::BuddyAllocator`] that hands out [`DevicePtr`]s.

use crate::arena::DevicePtr;
use crate::buddy::{BuddyAllocator, BuddyStats};
use crate::error::GpuError;
use parking_lot::Mutex;

/// Snapshot of pool health, re-exported from the buddy allocator.
pub type PoolStats = BuddyStats;

/// Thread-safe device memory pool.
#[derive(Debug)]
pub struct MemoryPool {
    device: u32,
    buddy: Mutex<BuddyAllocator>,
}

impl MemoryPool {
    /// Creates a pool of `capacity` bytes for `device` with the given
    /// minimum block size.
    pub fn new(device: u32, capacity: usize, min_block: usize) -> Self {
        Self {
            device,
            buddy: Mutex::new(BuddyAllocator::new(capacity, min_block)),
        }
    }

    /// Allocates `bytes` of device memory. The returned pointer's `len` is
    /// the *requested* length; the pool internally reserves the rounded
    /// buddy block.
    pub fn alloc(&self, bytes: usize) -> Result<DevicePtr, GpuError> {
        let offset = self.buddy.lock().alloc(bytes)?;
        Ok(DevicePtr {
            device: self.device,
            offset,
            len: bytes as u64,
        })
    }

    /// Returns an allocation to the pool.
    pub fn free(&self, ptr: DevicePtr) -> Result<(), GpuError> {
        if ptr.device != self.device {
            return Err(GpuError::WrongDevice {
                owner: ptr.device,
                used_on: self.device,
            });
        }
        self.buddy.lock().free(ptr.offset)
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        self.buddy.lock().stats()
    }

    /// Bytes available (possibly fragmented).
    pub fn free_bytes(&self) -> usize {
        self.buddy.lock().free_bytes()
    }

    /// True when no allocation is live and the arena is fully coalesced.
    pub fn is_pristine(&self) -> bool {
        self.buddy.lock().is_pristine()
    }

    /// Device this pool serves.
    pub fn device(&self) -> u32 {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn alloc_carries_device_and_len() {
        let p = MemoryPool::new(2, 1 << 20, 256);
        let ptr = p.alloc(1000).unwrap();
        assert_eq!(ptr.device, 2);
        assert_eq!(ptr.len, 1000);
        p.free(ptr).unwrap();
        assert!(p.is_pristine());
    }

    #[test]
    fn wrong_device_free_rejected() {
        let p = MemoryPool::new(0, 1 << 16, 256);
        let bad = DevicePtr { device: 1, offset: 0, len: 16 };
        assert!(matches!(p.free(bad), Err(GpuError::WrongDevice { .. })));
    }

    #[test]
    fn concurrent_alloc_free_no_overlap() {
        let p = Arc::new(MemoryPool::new(0, 1 << 22, 256));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    let mut ptrs = Vec::new();
                    for i in 0..200 {
                        ptrs.push(p.alloc(256 + (i % 7) * 100).unwrap());
                        if i % 3 == 0 {
                            p.free(ptrs.swap_remove(0)).unwrap();
                        }
                    }
                    for ptr in ptrs {
                        p.free(ptr).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(p.is_pristine());
        assert_eq!(p.stats().allocs, 800);
    }
}
