//! Modeled durations for device operations.
//!
//! Every simulated op reports how long it *would* take on the paper's
//! hardware (RTX 2080-class devices over PCIe 3.0). These durations drive
//! two things: the per-device busy-time counters used in tests/stats, and
//! the calibration inputs to the `hf-sim` discrete-event model that
//! regenerates the paper's scaling figures.

/// Virtual duration in nanoseconds. A plain newtype (not `std::time::
/// Duration`) so the discrete-event simulator can do exact integer math.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// From (fractional) seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        Self((s * 1e9).round().max(0.0) as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        SimDuration(self.0 - rhs.0)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// Cost model for device operations, in paper-hardware terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Host-to-device bandwidth in bytes/second (PCIe 3.0 x16 ≈ 12 GB/s
    /// effective).
    pub h2d_bytes_per_sec: f64,
    /// Device-to-host bandwidth in bytes/second.
    pub d2h_bytes_per_sec: f64,
    /// Fixed per-transfer latency (driver + DMA setup).
    pub copy_latency: SimDuration,
    /// Fixed kernel launch latency.
    pub launch_latency: SimDuration,
    /// Device throughput for kernel work, in "work units" per second. A
    /// kernel declares its work in abstract units (e.g. flops or thread
    /// iterations); duration = latency + work / throughput.
    pub kernel_units_per_sec: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            h2d_bytes_per_sec: 12.0e9,
            d2h_bytes_per_sec: 12.0e9,
            copy_latency: SimDuration::from_micros(10),
            launch_latency: SimDuration::from_micros(5),
            kernel_units_per_sec: 1.0e9,
        }
    }
}

impl CostModel {
    /// Modeled duration of a host-to-device copy of `bytes`.
    pub fn h2d(&self, bytes: usize) -> SimDuration {
        self.copy_latency
            + SimDuration::from_secs_f64(bytes as f64 / self.h2d_bytes_per_sec)
    }

    /// Modeled duration of a device-to-host copy of `bytes`.
    pub fn d2h(&self, bytes: usize) -> SimDuration {
        self.copy_latency
            + SimDuration::from_secs_f64(bytes as f64 / self.d2h_bytes_per_sec)
    }

    /// Modeled duration of a kernel declaring `work_units` of work.
    pub fn kernel(&self, work_units: f64) -> SimDuration {
        self.launch_latency
            + SimDuration::from_secs_f64(work_units / self.kernel_units_per_sec)
    }
}

/// Exponentially-weighted moving average of a modeled duration, used by
/// the locality-aware placement path to refine analytic estimates with
/// observed per-task durations across epochs.
///
/// The first observation replaces the seed entirely (a measured value
/// always beats the analytic prior); later observations blend in with
/// weight `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    value: f64,
    samples: u64,
}

impl Ewma {
    /// Starts from an analytic seed (zero observed samples).
    pub fn seeded(value: f64) -> Self {
        Self { value, samples: 0 }
    }

    /// Folds one observation in with weight `alpha` in `(0, 1]`. The
    /// first sample replaces the seed outright.
    pub fn observe(&mut self, sample: f64, alpha: f64) {
        if self.samples == 0 {
            self.value = sample;
        } else {
            self.value += alpha * (sample - self.value);
        }
        self.samples += 1;
    }

    /// Current estimate.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of observations folded in (0 = still the seed).
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        let d = SimDuration::from_secs_f64(1.5);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(5);
        assert_eq!(a + b, SimDuration::from_nanos(15));
        assert_eq!(a - b, SimDuration::from_nanos(5));
        let s: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(s, SimDuration::from_nanos(20));
    }

    #[test]
    fn copy_cost_scales_with_bytes() {
        let m = CostModel::default();
        let small = m.h2d(1024);
        let big = m.h2d(1024 * 1024 * 100);
        assert!(big > small);
        // 1.2 GB at 12 GB/s ≈ 100 ms.
        let d = m.h2d(1_200_000_000);
        assert!((d.as_secs_f64() - 0.1).abs() < 0.01);
    }

    #[test]
    fn kernel_cost_has_launch_floor() {
        let m = CostModel::default();
        assert!(m.kernel(0.0) >= m.launch_latency);
        assert!(m.kernel(1e9).as_secs_f64() > 0.9);
    }

    #[test]
    fn ewma_first_sample_replaces_seed() {
        let mut e = Ewma::seeded(100.0);
        assert_eq!(e.value(), 100.0);
        assert_eq!(e.samples(), 0);
        e.observe(10.0, 0.3);
        assert_eq!(e.value(), 10.0);
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn ewma_blends_later_samples() {
        let mut e = Ewma::seeded(0.0);
        e.observe(10.0, 0.5);
        e.observe(20.0, 0.5);
        assert!((e.value() - 15.0).abs() < 1e-9);
        // Converges toward a steady signal.
        for _ in 0..50 {
            e.observe(40.0, 0.5);
        }
        assert!((e.value() - 40.0).abs() < 1e-6);
    }
}
