//! Metrics registry: named counters, gauges, and histograms with JSON
//! and Prometheus text exposition.
//!
//! The runtime's statistics are scattered by design —
//! [`hf_core::ExecutorStats`] on the executor, `DeviceStats`/`PoolStats`
//! per device, span streams in the trace collector. The registry unifies
//! them under stable metric names (`hf_executor_*`, `hf_gpu_*`,
//! `hf_span_*`) so one scrape/snapshot captures the whole runtime. Call
//! the `collect_*` methods at a quiescent point (after `wait()`), then
//! render with [`MetricsRegistry::prometheus_text`] or
//! [`MetricsRegistry::to_json_string`].

use hf_core::{SpanCat, StatsSnapshot, TraceSpan};
use hf_gpu::GpuRuntime;
use parking_lot::Mutex;
use serde_json::{Map, Value};
use std::sync::atomic::Ordering;

/// A metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Distribution with cumulative buckets (Prometheus semantics:
    /// `buckets[i]` counts observations `<= bounds[i]`).
    Histogram(Histogram),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// A histogram over fixed bucket bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, ascending (an implicit `+Inf` bucket follows).
    pub bounds: Vec<f64>,
    /// Per-bound observation counts (not cumulative; `render` cumulates).
    /// One extra slot counts observations above the last bound.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given ascending bounds.
    pub fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the bucket
    /// counts, Prometheus `histogram_quantile` style: find the bucket
    /// containing the target rank, then interpolate linearly between its
    /// lower and upper bound. Observations in the overflow (`+Inf`)
    /// bucket clamp to the last finite bound — a bucketed histogram
    /// cannot say more. Returns `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                cum += c;
                continue;
            }
            let lo_cum = cum;
            cum += c;
            if (cum as f64) < rank {
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // Overflow bucket: clamp to the last finite bound.
                return self.bounds.last().copied().unwrap_or(self.sum / self.count as f64);
            };
            let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            let frac = ((rank - lo_cum as f64) / c as f64).clamp(0.0, 1.0);
            return lower + (upper - lower) * frac;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// Default duration buckets in microseconds: 1us .. ~1s, powers of 4.
pub fn duration_bounds_us() -> Vec<f64> {
    (0..11).map(|i| 4f64.powi(i)).collect()
}

/// Default duration buckets in nanoseconds: 256ns .. ~4.3s, powers of 4
/// (`4^4 .. 4^16`). Suited to task latencies, which span sub-microsecond
/// host tasks to multi-second chaos runs.
pub fn duration_bounds_nanos() -> Vec<f64> {
    (4..17).map(|i| 4f64.powi(i)).collect()
}

/// One registered metric: name + labels identify it, `help` documents it.
#[derive(Debug, Clone)]
struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    value: MetricValue,
}

/// Insertion-ordered registry of named metrics.
///
/// `set_*` replaces the value of an existing (name, labels) pair, so
/// collectors can be re-run between phases; `observe` accumulates.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn upsert(&self, name: &str, help: &str, labels: &[(&str, &str)], value: MetricValue) {
        let mut m = self.metrics.lock();
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(existing) = m
            .iter_mut()
            .find(|x| x.name == name && x.labels == labels)
        {
            existing.value = value;
        } else {
            m.push(Metric {
                name: name.to_string(),
                help: help.to_string(),
                labels,
                value,
            });
        }
    }

    /// Sets a counter metric.
    pub fn set_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        self.upsert(name, help, labels, MetricValue::Counter(v));
    }

    /// Sets a gauge metric.
    pub fn set_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        self.upsert(name, help, labels, MetricValue::Gauge(v));
    }

    /// Records one observation into a histogram metric (created with the
    /// default microsecond-duration buckets on first use).
    pub fn observe(&self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let mut m = self.metrics.lock();
        let labels_owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(existing) = m
            .iter_mut()
            .find(|x| x.name == name && x.labels == labels_owned)
        {
            if let MetricValue::Histogram(h) = &mut existing.value {
                h.observe(v);
            }
        } else {
            let mut h = Histogram::new(duration_bounds_us());
            h.observe(v);
            m.push(Metric {
                name: name.to_string(),
                help: help.to_string(),
                labels: labels_owned,
                value: MetricValue::Histogram(h),
            });
        }
    }

    /// Records one observation into a histogram metric, creating it with
    /// the given bucket `bounds` on first use (later calls reuse the
    /// existing buckets; `bounds` only matters on creation).
    pub fn observe_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        v: f64,
    ) {
        let mut m = self.metrics.lock();
        let labels_owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(existing) = m
            .iter_mut()
            .find(|x| x.name == name && x.labels == labels_owned)
        {
            if let MetricValue::Histogram(h) = &mut existing.value {
                h.observe(v);
            }
        } else {
            let mut h = Histogram::new(bounds.to_vec());
            h.observe(v);
            m.push(Metric {
                name: name.to_string(),
                help: help.to_string(),
                labels: labels_owned,
                value: MetricValue::Histogram(h),
            });
        }
    }

    /// Sets (replaces) a histogram metric wholesale — for exporters that
    /// aggregate observations elsewhere and publish snapshots.
    pub fn set_histogram(&self, name: &str, help: &str, labels: &[(&str, &str)], h: Histogram) {
        self.upsert(name, help, labels, MetricValue::Histogram(h));
    }

    /// Returns a clone of a registered histogram, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        let labels_owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.metrics
            .lock()
            .iter()
            .find(|x| x.name == name && x.labels == labels_owned)
            .and_then(|x| match &x.value {
                MetricValue::Histogram(h) => Some(h.clone()),
                _ => None,
            })
    }

    /// Number of registered metrics (one per name+labels pair).
    pub fn len(&self) -> usize {
        self.metrics.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Imports an executor statistics snapshot as `hf_executor_*` metrics.
    pub fn collect_executor(&self, s: &StatsSnapshot) {
        let l: &[(&str, &str)] = &[];
        self.set_counter("hf_executor_tasks_executed_total", "Tasks executed (all kinds)", l, s.tasks_executed);
        self.set_counter("hf_executor_steals_total", "Successful steals", l, s.steals);
        self.set_counter("hf_executor_steal_attempts_total", "Steal attempts", l, s.steal_attempts);
        self.set_gauge("hf_executor_steal_success_rate", "steals / steal_attempts", l, s.steal_success_rate);
        self.set_counter("hf_executor_sleeps_total", "Worker sleep commits", l, s.sleeps);
        self.set_counter("hf_executor_wakeups_total", "Sleeping-worker wakeups", l, s.wakeups);
        self.set_counter("hf_executor_rounds_total", "Graph rounds completed", l, s.rounds);
        self.set_counter("hf_executor_fused_total", "GPU tasks dispatched as fused chain members", l, s.fused);
        self.set_counter("hf_executor_injector_batches_total", "Batched injector sprays", l, s.injector_batches);
        self.set_counter("hf_executor_notify_coalesced_total", "Wakeups saved by notification coalescing", l, s.notify_coalesced);
        self.set_counter("hf_executor_topo_cache_hits_total", "Cached freeze/placement plan reuses", l, s.topo_cache_hits);
        self.set_counter("hf_executor_topo_cache_misses_total", "Freeze + placement recomputations", l, s.topo_cache_misses);
        self.set_counter("hf_executor_faults_injected_total", "Injected device faults observed by task failures", l, s.faults_injected);
        self.set_counter("hf_executor_retries_total", "Task attempts re-scheduled by the retry policy", l, s.retries);
        self.set_counter("hf_executor_devices_lost_total", "Devices observed as lost", l, s.devices_lost);
        self.set_counter("hf_executor_cancelled_total", "Submissions finished as cancelled", l, s.cancelled);
        self.set_counter("hf_executor_bytes_h2d_total", "Host-to-device bytes actually copied by pull tasks", l, s.bytes_h2d);
        self.set_counter("hf_executor_bytes_d2h_total", "Device-to-host bytes copied back by push tasks", l, s.bytes_d2h);
        self.set_counter("hf_executor_transfers_elided_total", "H2D copies skipped because the device bytes were already current", l, s.transfers_elided);
        self.set_counter("hf_placement_warm_hits_total", "Groups the locality policy placed onto a device already holding their data warm", l, s.placement_warm_hits);
        self.set_counter("hf_placement_est_bytes_saved_total", "Transfer bytes placement estimated its warm-hit decisions would save via elision", l, s.placement_est_bytes_saved);
        self.set_counter("hf_executor_steals_affine_total", "Successful steals from topology-preferred victims", l, s.steals_affine);
        self.set_gauge("hf_placement_imbalance", "Cost-weighted imbalance (max/mean bin load) of the latest placement", l, s.placement_imbalance);
        self.set_gauge("hf_executor_inflight_tasks", "Tasks dispatched and not yet finished (live gauge; populated by Executor::snapshot)", l, s.inflight_tasks as f64);
        self.set_gauge("hf_executor_queue_depth", "Tasks waiting in the injector and worker deques (live gauge; populated by Executor::snapshot)", l, s.queue_depth as f64);
    }

    /// Imports an executor's current per-device modeled-load estimates
    /// (the decaying bias that placement uses to steer later topologies
    /// toward idle GPUs) as `hf_placement_device_load_nanos` gauges
    /// labeled by device.
    pub fn collect_device_loads(&self, loads: &[f64]) {
        for (d, &load) in loads.iter().enumerate() {
            let id = d.to_string();
            self.set_gauge(
                "hf_placement_device_load_nanos",
                "Decaying modeled load per device used to bias placement",
                &[("device", id.as_str())],
                load,
            );
        }
    }

    /// Imports per-device engine and memory-pool statistics as
    /// `hf_gpu_*` metrics labeled by device.
    pub fn collect_gpu(&self, rt: &GpuRuntime) {
        for d in rt.devices() {
            let id = d.id().to_string();
            let l: &[(&str, &str)] = &[("device", id.as_str())];
            let st = d.stats();
            self.set_counter("hf_gpu_busy_nanos_total", "Modeled busy nanoseconds", l, st.busy_nanos.load(Ordering::Relaxed));
            self.set_counter("hf_gpu_h2d_bytes_total", "Host-to-device bytes copied", l, st.h2d_bytes.load(Ordering::Relaxed));
            self.set_counter("hf_gpu_d2h_bytes_total", "Device-to-host bytes copied", l, st.d2h_bytes.load(Ordering::Relaxed));
            self.set_counter("hf_gpu_kernels_total", "Kernels launched", l, st.kernels.load(Ordering::Relaxed));
            self.set_counter("hf_gpu_ops_total", "Stream ops executed", l, st.ops.load(Ordering::Relaxed));
            let p = d.pool_stats();
            self.set_counter("hf_gpu_pool_allocs_total", "Pool allocations", l, p.allocs);
            self.set_counter("hf_gpu_pool_frees_total", "Pool frees", l, p.frees);
            self.set_counter("hf_gpu_pool_splits_total", "Buddy block splits", l, p.splits);
            self.set_counter("hf_gpu_pool_merges_total", "Buddy coalesces", l, p.merges);
            self.set_counter("hf_gpu_pool_failures_total", "Out-of-memory allocation failures", l, p.failures);
            self.set_counter("hf_gpu_pool_magazine_hits_total", "Allocations served from a lock-free magazine", l, p.magazine_hits);
            self.set_counter("hf_gpu_pool_magazine_misses_total", "Allocations that fell through to the buddy allocator", l, p.magazine_misses);
            self.set_gauge("hf_gpu_pool_magazine_cached_bytes", "Bytes parked in magazine caches", l, p.magazine_cached_bytes as f64);
            self.set_gauge("hf_gpu_pool_bytes_in_use", "Bytes currently handed out", l, p.bytes_in_use as f64);
            self.set_gauge("hf_gpu_pool_peak_bytes", "High-water mark of bytes in use", l, p.peak_bytes as f64);
        }
    }

    /// Imports recorded spans as duration histograms
    /// (`hf_span_duration_us`) labeled by span category and task kind.
    pub fn collect_spans(&self, spans: &[TraceSpan]) {
        for s in spans {
            let kind = match s.cat {
                SpanCat::Task | SpanCat::Dispatch => s.kind.to_string(),
                _ => "-".to_string(),
            };
            self.observe(
                "hf_span_duration_us",
                "Span durations in microseconds",
                &[("cat", s.cat.name()), ("kind", kind.as_str())],
                s.dur_us as f64,
            );
        }
    }

    /// Renders the registry as a JSON array (one object per metric).
    pub fn to_json(&self) -> Value {
        let m = self.metrics.lock();
        let mut arr = Vec::with_capacity(m.len());
        for metric in m.iter() {
            let mut o = Map::new();
            o.insert("name".into(), Value::Str(metric.name.clone()));
            o.insert("type".into(), Value::Str(metric.value.type_name().into()));
            o.insert("help".into(), Value::Str(metric.help.clone()));
            let mut labels = Map::new();
            for (k, v) in &metric.labels {
                labels.insert(k.clone(), Value::Str(v.clone()));
            }
            o.insert("labels".into(), Value::Object(labels));
            match &metric.value {
                MetricValue::Counter(v) => {
                    o.insert("value".into(), Value::UInt(*v));
                }
                MetricValue::Gauge(v) => {
                    o.insert("value".into(), Value::Float(*v));
                }
                MetricValue::Histogram(h) => {
                    let mut buckets = Vec::new();
                    let mut cum = 0u64;
                    for (i, c) in h.counts.iter().enumerate() {
                        cum += c;
                        let mut b = Map::new();
                        let le = h
                            .bounds
                            .get(i)
                            .map(|x| Value::Float(*x))
                            .unwrap_or(Value::Str("+Inf".into()));
                        b.insert("le".into(), le);
                        b.insert("count".into(), Value::UInt(cum));
                        buckets.push(Value::Object(b));
                    }
                    o.insert("buckets".into(), Value::Array(buckets));
                    o.insert("sum".into(), Value::Float(h.sum));
                    o.insert("count".into(), Value::UInt(h.count));
                }
            }
            arr.push(Value::Object(o));
        }
        Value::Array(arr)
    }

    /// Renders the registry as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("infallible")
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, `name{labels} value` samples;
    /// histograms expand to `_bucket`/`_sum`/`_count` series).
    pub fn prometheus_text(&self) -> String {
        let m = self.metrics.lock();
        let mut out = String::new();
        let mut described: Vec<&str> = Vec::new();
        for metric in m.iter() {
            if !described.contains(&metric.name.as_str()) {
                out.push_str(&format!("# HELP {} {}\n", metric.name, metric.help));
                out.push_str(&format!(
                    "# TYPE {} {}\n",
                    metric.name,
                    metric.value.type_name()
                ));
                described.push(metric.name.as_str());
            }
            match &metric.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        metric.name,
                        label_set(&metric.labels, None),
                        v
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        metric.name,
                        label_set(&metric.labels, None),
                        v
                    ));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, c) in h.counts.iter().enumerate() {
                        cum += c;
                        let le = h
                            .bounds
                            .get(i)
                            .map(|x| x.to_string())
                            .unwrap_or_else(|| "+Inf".to_string());
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            metric.name,
                            label_set(&metric.labels, Some(&le)),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        metric.name,
                        label_set(&metric.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        metric.name,
                        label_set(&metric.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

/// Formats a `{k="v",...}` label set (empty string when no labels and no
/// `le` bound).
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('"', "'")))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_core::Track;
    use hf_core::TaskKind;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = MetricsRegistry::new();
        r.set_counter("hf_test_total", "a counter", &[], 3);
        r.set_counter("hf_test_total", "a counter", &[], 5); // replace
        r.set_gauge("hf_test_rate", "a gauge", &[("worker", "1")], 0.5);
        assert_eq!(r.len(), 2);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE hf_test_total counter"));
        assert!(text.contains("hf_test_total 5"));
        assert!(text.contains("hf_test_rate{worker=\"1\"} 0.5"));
        let json = serde_json::from_str(&r.to_json_string()).expect("valid JSON");
        let arr = json.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("value").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn histogram_buckets_cumulate() {
        let r = MetricsRegistry::new();
        for v in [0.5, 3.0, 3.0, 1e9] {
            r.observe("hf_lat_us", "latency", &[], v);
        }
        let text = r.prometheus_text();
        assert!(text.contains("hf_lat_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("hf_lat_us_bucket{le=\"4\"} 3"));
        assert!(text.contains("hf_lat_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("hf_lat_us_count 4"));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(vec![10.0, 20.0, 40.0]);
        for _ in 0..10 {
            h.observe(5.0); // all land in (0, 10]
        }
        // Rank q*10 inside the first bucket: linear between 0 and 10.
        assert!((h.quantile(0.5) - 5.0).abs() < 1e-9);
        assert!((h.quantile(1.0) - 10.0).abs() < 1e-9);
        // Spread across buckets: 5 in (0,10], 5 in (10,20].
        let mut h = Histogram::new(vec![10.0, 20.0]);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 11.0, 12.0, 13.0, 14.0, 15.0] {
            h.observe(v);
        }
        assert!((h.quantile(0.5) - 10.0).abs() < 1e-9);
        assert!(h.quantile(0.9) > 10.0 && h.quantile(0.9) <= 20.0);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(vec![1.0, 2.0]);
        assert_eq!(h.quantile(0.99), 0.0, "empty histogram");
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.observe(100.0); // overflow bucket
        assert_eq!(h.quantile(0.5), 2.0, "overflow clamps to last bound");
        let mut h = Histogram::new(vec![]);
        h.observe(3.0);
        assert_eq!(h.quantile(0.5), 3.0, "no bounds falls back to mean");
    }

    #[test]
    fn prometheus_histogram_conformance() {
        // The exposition must carry cumulative `le`-labeled buckets, a
        // trailing `+Inf` bucket equal to `_count`, and `_sum`.
        let r = MetricsRegistry::new();
        let bounds = duration_bounds_nanos();
        for v in [100.0, 300.0, 2000.0, 1e12] {
            r.observe_with("hf_task_exec_nanos", "exec time", &[("kind", "host")], &bounds, v);
        }
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE hf_task_exec_nanos histogram"));
        // 256 is the first bound (4^4): one observation (100) <= 256.
        assert!(text.contains("hf_task_exec_nanos_bucket{kind=\"host\",le=\"256\"} 1"));
        // 1024 = 4^5: 100 and 300 both fit; cumulative 2.
        assert!(text.contains("hf_task_exec_nanos_bucket{kind=\"host\",le=\"1024\"} 2"));
        assert!(text.contains("hf_task_exec_nanos_bucket{kind=\"host\",le=\"+Inf\"} 4"));
        assert!(text.contains("hf_task_exec_nanos_count{kind=\"host\"} 4"));
        assert!(text.contains("hf_task_exec_nanos_sum{kind=\"host\"}"));
        // Cumulative counts never decrease across the bucket series.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let n: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
            assert!(n >= last, "non-cumulative bucket line: {line}");
            last = n;
        }
        // p99 of [100, 300, 2000, 1e12] under these buckets clamps into
        // the overflow → last finite bound.
        let h = r.histogram("hf_task_exec_nanos", &[("kind", "host")]).unwrap();
        assert_eq!(h.quantile(0.99), *bounds.last().unwrap());
    }

    #[test]
    fn set_histogram_replaces_wholesale() {
        let r = MetricsRegistry::new();
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        r.set_histogram("hf_snap", "snapshot hist", &[], h.clone());
        assert_eq!(r.histogram("hf_snap", &[]).unwrap().count, 2);
        h.observe(20.0);
        r.set_histogram("hf_snap", "snapshot hist", &[], h);
        assert_eq!(r.histogram("hf_snap", &[]).unwrap().count, 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn executor_live_gauges_are_exported() {
        let r = MetricsRegistry::new();
        let s = StatsSnapshot {
            inflight_tasks: 3,
            queue_depth: 7,
            ..Default::default()
        };
        r.collect_executor(&s);
        let text = r.prometheus_text();
        assert!(text.contains("hf_executor_inflight_tasks 3"));
        assert!(text.contains("hf_executor_queue_depth 7"));
    }

    #[test]
    fn collects_all_runtime_sources() {
        use hf_core::data::HostVec;
        use hf_core::{Executor, Heteroflow, TraceCollector};
        use std::sync::Arc;

        let trace = TraceCollector::shared();
        let ex = Executor::builder(2, 1).tracer(Arc::clone(&trace)).build();
        let g = Heteroflow::new("m");
        let d: HostVec<u32> = HostVec::from_vec(vec![0; 1024]);
        let p = g.pull("p", &d);
        let k = g.kernel("k", &[&p], |_, _| {});
        k.cover(1024, 128);
        // End on a host task: its counter increment happens before the
        // worker finishes it, so the totals are deterministic at wait().
        let h = g.host("done", || {});
        p.precede(&k);
        k.precede(&h);
        ex.run(&g).wait().expect("runs");

        let r = MetricsRegistry::new();
        r.collect_executor(&ex.stats().snapshot());
        r.collect_gpu(ex.gpu_runtime());
        r.collect_device_loads(&ex.device_loads());
        r.collect_spans(&trace.spans());
        let text = r.prometheus_text();
        assert!(text.contains("hf_executor_tasks_executed_total 3"));
        assert!(text.contains("hf_gpu_h2d_bytes_total{device=\"0\"} 4096"));
        assert!(text.contains("hf_gpu_pool_allocs_total{device=\"0\"} 1"));
        assert!(text.contains("hf_placement_warm_hits_total 0"));
        assert!(text.contains("hf_placement_est_bytes_saved_total 0"));
        assert!(text.contains("hf_placement_imbalance 1"));
        assert!(text.contains("hf_placement_device_load_nanos{device=\"0\"}"));
        assert!(text.contains("hf_span_duration_us_bucket"));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_whitespace()
                        .nth(1)
                        .map(|v| v.parse::<f64>().is_ok())
                        .unwrap_or(false),
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn span_histograms_label_by_cat_and_kind() {
        let r = MetricsRegistry::new();
        r.collect_spans(&[TraceSpan {
            track: Track::Device(0),
            name: "k".into(),
            cat: SpanCat::Task,
            kind: TaskKind::Kernel,
            device: Some(0),
            stream: Some(0),
            start_us: 0,
            dur_us: 10,
            bytes: 0,
            epoch: None,
        }]);
        let text = r.prometheus_text();
        assert!(text.contains("cat=\"task\""));
        assert!(text.contains("kind=\"kernel\""));
    }
}
