//! ISCAS-89-style `.bench` netlist reader/writer.
//!
//! OpenTimer consumes standard benchmark formats; this module gives the
//! timing substrate the same ability, so users can run the analysis on
//! real netlists instead of the synthetic generator:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! INPUT(G2)
//! OUTPUT(G5)
//! G4 = NAND(G1, G2)
//! G5 = NOT(G4)
//! ```
//!
//! `OUTPUT(x)` declares signal `x` observed at a primary output; the
//! parser materializes an explicit [`GateKind::Output`] gate driven by
//! `x`, matching the in-memory [`Circuit`] invariants.

use crate::netlist::{Circuit, Gate, GateKind};
use std::collections::HashMap;
use std::fmt;

/// Parse failures with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchParseError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BenchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BenchParseError {}

fn gate_kind(name: &str) -> Option<GateKind> {
    match name.to_ascii_uppercase().as_str() {
        "NAND" => Some(GateKind::Nand),
        "NOR" => Some(GateKind::Nor),
        "NOT" | "INV" => Some(GateKind::Inv),
        "BUF" | "BUFF" => Some(GateKind::Buf),
        "AND" => Some(GateKind::And),
        "OR" => Some(GateKind::Or),
        "XOR" => Some(GateKind::Xor),
        _ => None,
    }
}

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Nand => "NAND",
        GateKind::Nor => "NOR",
        GateKind::Inv => "NOT",
        GateKind::Buf => "BUFF",
        GateKind::And => "AND",
        GateKind::Or => "OR",
        GateKind::Xor => "XOR",
        GateKind::Input | GateKind::Output => unreachable!("IO written separately"),
    }
}

enum Stmt {
    Input(String),
    Output(String),
    Gate {
        out: String,
        kind: GateKind,
        ins: Vec<String>,
    },
}

fn parse_line(line: &str, lineno: usize) -> Result<Option<Stmt>, BenchParseError> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let err = |message: String| BenchParseError {
        line: lineno,
        message,
    };

    // INPUT(x) / OUTPUT(x)
    for (prefix, make) in [
        ("INPUT", true),
        ("OUTPUT", false),
    ] {
        if let Some(rest) = line.strip_prefix(prefix) {
            let inner = rest
                .trim()
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| err(format!("malformed {prefix} declaration")))?;
            let name = inner.trim();
            if name.is_empty() {
                return Err(err(format!("{prefix} with empty signal name")));
            }
            return Ok(Some(if make {
                Stmt::Input(name.to_string())
            } else {
                Stmt::Output(name.to_string())
            }));
        }
    }

    // out = FUNC(a, b, ...)
    let (out, rhs) = line
        .split_once('=')
        .ok_or_else(|| err("expected '=' in gate definition".into()))?;
    let rhs = rhs.trim();
    let open = rhs
        .find('(')
        .ok_or_else(|| err("expected '(' after gate function".into()))?;
    let close = rhs
        .rfind(')')
        .ok_or_else(|| err("expected closing ')'".into()))?;
    let func = rhs[..open].trim();
    let kind = gate_kind(func).ok_or_else(|| err(format!("unknown gate function '{func}'")))?;
    let ins: Vec<String> = rhs[open + 1..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if ins.is_empty() {
        return Err(err("gate with no inputs".into()));
    }
    match kind {
        GateKind::Inv | GateKind::Buf if ins.len() != 1 => {
            return Err(err(format!("{func} takes exactly one input")));
        }
        _ => {}
    }
    Ok(Some(Stmt::Gate {
        out: out.trim().to_string(),
        kind,
        ins,
    }))
}

/// Parses a `.bench` netlist into a [`Circuit`].
pub fn parse_bench(text: &str) -> Result<Circuit, BenchParseError> {
    let mut stmts = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(s) = parse_line(line, i + 1)? {
            stmts.push((i + 1, s));
        }
    }

    // Pass 1: create signal-defining gates (inputs and logic).
    let mut gates: Vec<Gate> = Vec::new();
    let mut id_of: HashMap<String, u32> = HashMap::new();
    let mut logic: Vec<(usize, u32, Vec<String>)> = Vec::new(); // (line, gate, ins)
    let mut outputs: Vec<(usize, String)> = Vec::new();
    for (line, s) in &stmts {
        match s {
            Stmt::Input(name) => {
                if id_of.contains_key(name) {
                    return Err(BenchParseError {
                        line: *line,
                        message: format!("signal '{name}' defined twice"),
                    });
                }
                id_of.insert(name.clone(), gates.len() as u32);
                gates.push(Gate {
                    kind: GateKind::Input,
                    delay_factor: 1.0,
                });
            }
            Stmt::Gate { out, kind, ins } => {
                if id_of.contains_key(out) {
                    return Err(BenchParseError {
                        line: *line,
                        message: format!("signal '{out}' defined twice"),
                    });
                }
                id_of.insert(out.clone(), gates.len() as u32);
                logic.push((*line, gates.len() as u32, ins.clone()));
                gates.push(Gate {
                    kind: *kind,
                    delay_factor: 1.0,
                });
            }
            Stmt::Output(name) => outputs.push((*line, name.clone())),
        }
    }

    let n_defined = gates.len();
    let mut fanin: Vec<Vec<u32>> = vec![Vec::new(); n_defined + outputs.len()];
    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n_defined + outputs.len()];

    // Pass 2: connect logic fanins.
    for (line, gid, ins) in &logic {
        for name in ins {
            let src = *id_of.get(name).ok_or_else(|| BenchParseError {
                line: *line,
                message: format!("undefined signal '{name}'"),
            })?;
            if !fanin[*gid as usize].contains(&src) {
                fanin[*gid as usize].push(src);
                fanout[src as usize].push(*gid);
            }
        }
    }

    // Pass 3: materialize output gates.
    let mut primary_outputs = Vec::with_capacity(outputs.len());
    for (line, name) in &outputs {
        let src = *id_of.get(name).ok_or_else(|| BenchParseError {
            line: *line,
            message: format!("undefined output signal '{name}'"),
        })?;
        let id = gates.len() as u32;
        gates.push(Gate {
            kind: GateKind::Output,
            delay_factor: 1.0,
        });
        fanin[id as usize].push(src);
        fanout[src as usize].push(id);
        primary_outputs.push(id);
    }

    let primary_inputs: Vec<u32> = gates
        .iter()
        .enumerate()
        .filter(|(_, g)| g.kind == GateKind::Input)
        .map(|(i, _)| i as u32)
        .collect();
    if primary_inputs.is_empty() {
        return Err(BenchParseError {
            line: 0,
            message: "netlist has no INPUT declarations".into(),
        });
    }
    if primary_outputs.is_empty() {
        return Err(BenchParseError {
            line: 0,
            message: "netlist has no OUTPUT declarations".into(),
        });
    }

    // Cycle check via Kahn (levelize panics on cycles; give an error
    // instead).
    {
        let mut indeg: Vec<usize> = fanin.iter().map(|f| f.len()).collect();
        let mut queue: Vec<usize> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in &fanout[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v as usize);
                }
            }
        }
        if seen != gates.len() {
            return Err(BenchParseError {
                line: 0,
                message: "netlist contains a combinational loop".into(),
            });
        }
    }

    Ok(Circuit::from_parts(gates, fanin, fanout, primary_inputs, primary_outputs))
}

/// Serializes a [`Circuit`] back to `.bench` text. Signals are named
/// `G<n>` by gate id; output declarations refer to the driving signal.
pub fn write_bench(c: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# {} gates, {} nets\n",
        c.num_gates(),
        c.num_edges()
    ));
    for &pi in &c.primary_inputs {
        out.push_str(&format!("INPUT(G{pi})\n"));
    }
    for &po in &c.primary_outputs {
        let driver = c.fanin[po as usize][0];
        out.push_str(&format!("OUTPUT(G{driver})\n"));
    }
    for (id, g) in c.gates.iter().enumerate() {
        match g.kind {
            GateKind::Input | GateKind::Output => continue,
            kind => {
                let ins: Vec<String> = c.fanin[id]
                    .iter()
                    .map(|&s| format!("G{s}"))
                    .collect();
                out.push_str(&format!(
                    "G{id} = {}({})\n",
                    kind_name(kind),
                    ins.join(", ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitConfig;

    const SAMPLE: &str = r"
# c17-like sample
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G11)
G10 = NAND(G1, G2)
G11 = NOR(G10, G3)
";

    #[test]
    fn parses_sample() {
        let c = parse_bench(SAMPLE).expect("valid netlist");
        assert_eq!(c.primary_inputs.len(), 3);
        assert_eq!(c.primary_outputs.len(), 1);
        // 3 inputs + 2 logic + 1 output gate.
        assert_eq!(c.num_gates(), 6);
        assert_eq!(c.depth(), 4, "in -> nand -> nor -> out");
        // The NOR gate has the NAND and G3 as fanins.
        let nor = 4usize;
        assert_eq!(c.gates[nor].kind, GateKind::Nor);
        assert_eq!(c.fanin[nor].len(), 2);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let orig = Circuit::synthesize(&CircuitConfig {
            num_gates: 300,
            ..Default::default()
        });
        let text = write_bench(&orig);
        let back = parse_bench(&text).expect("own output parses");
        assert_eq!(back.num_gates(), orig.num_gates());
        assert_eq!(back.num_edges(), orig.num_edges());
        assert_eq!(back.primary_inputs.len(), orig.primary_inputs.len());
        assert_eq!(back.primary_outputs.len(), orig.primary_outputs.len());
        assert_eq!(back.depth(), orig.depth());
        for (a, b) in orig.gates.iter().zip(&back.gates) {
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn sta_runs_on_parsed_netlist() {
        let c = parse_bench(SAMPLE).expect("valid");
        let v = &crate::views::make_views(1, 1.0)[0];
        let r = crate::sta::run_sta(&c, v);
        let po = c.primary_outputs[0] as usize;
        assert!(r.arrival[po] > 0.0);
        assert!(r.slack[po] > 0.0, "loose clock");
    }

    #[test]
    fn errors_are_located() {
        let e = parse_bench("INPUT(G1)\nG2 = FROB(G1)\nOUTPUT(G2)").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("FROB"));

        let e = parse_bench("INPUT(G1)\nG2 = NAND(G1, GX)\nOUTPUT(G2)").unwrap_err();
        assert!(e.message.contains("GX"));

        let e = parse_bench("INPUT(G1)\nOUTPUT(G1)\nINPUT(G1)").unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn combinational_loop_rejected() {
        let e = parse_bench(
            "INPUT(G1)\nG2 = NAND(G1, G3)\nG3 = NOT(G2)\nOUTPUT(G3)",
        )
        .unwrap_err();
        assert!(e.message.contains("loop"));
    }

    #[test]
    fn missing_io_rejected() {
        assert!(parse_bench("G2 = NOT(G2)").is_err());
        let e = parse_bench("INPUT(G1)").unwrap_err();
        assert!(e.message.contains("OUTPUT"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = parse_bench("\n# header\nINPUT(a) # trailing\n\nb = NOT(a)\nOUTPUT(b)\n")
            .expect("valid");
        assert_eq!(c.num_gates(), 3);
    }
}
