//! Microbenchmark + A1 ablation: Algorithm 1 (DevicePlacement) runtime
//! and the load balance of its packing policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hf_core::data::HostVec;
use hf_core::placement::{device_placement, PlacementPolicy};
use hf_core::Heteroflow;
use hf_gpu::CostModel;

/// A graph of `k` kernel groups with skewed pull sizes (group i pulls
/// ~i KB), the stress case for balanced packing.
fn grouped_graph(k: usize) -> hf_core::GraphInfo {
    let g = Heteroflow::new("groups");
    for i in 0..k {
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 1024 * (1 + i % 37)]);
        let p = g.pull(&format!("p{i}"), &x);
        let kn = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
        kn.work_units(((i % 11) + 1) as f64 * 1e5);
        p.precede(&kn);
    }
    g.info().expect("acyclic")
}

fn placement_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement/algorithm1");
    for &k in &[100usize, 1000, 10_000] {
        let info = grouped_graph(k);
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::new("balanced", k), &info, |b, info| {
            b.iter(|| {
                device_placement(info, 4, PlacementPolicy::BalancedLoad, &CostModel::default())
                    .expect("placeable")
            });
        });
    }
    g.finish();
}

/// A1: balanced-load packing vs round-robin vs random, measured by the
/// max/min device load ratio (printed once) and per-policy runtime.
fn ablation_a1(c: &mut Criterion) {
    let info = grouped_graph(2000);
    let cost = CostModel::default();
    for (name, policy) in [
        ("balanced", PlacementPolicy::BalancedLoad),
        ("roundrobin", PlacementPolicy::RoundRobin),
        ("random", PlacementPolicy::Random { seed: 3 }),
    ] {
        let p = device_placement(&info, 4, policy, &cost).expect("placeable");
        eprintln!(
            "[A1] {name:>10}: imbalance (max/min load) = {:.3}",
            p.imbalance()
        );
    }

    let mut g = c.benchmark_group("A1/policies");
    for (name, policy) in [
        ("balanced", PlacementPolicy::BalancedLoad),
        ("roundrobin", PlacementPolicy::RoundRobin),
        ("random", PlacementPolicy::Random { seed: 3 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| device_placement(&info, 4, policy, &cost).expect("placeable"));
        });
    }
    g.finish();
}

criterion_group!(benches, placement_runtime, ablation_a1);
criterion_main!(benches);
