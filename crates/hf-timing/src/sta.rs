//! Static timing analysis: levelized arrival/required/slack propagation.
//!
//! The classic OpenTimer-style forward/backward sweep: arrival times
//! propagate forward as a longest-path computation over the levelized
//! netlist; required times propagate backward from the clock constraint;
//! slack = required − arrival. All quantities are per-view (the view's
//! corner scales delays; its mode sets the clock period).

use crate::netlist::Circuit;
use crate::views::View;

/// Per-gate timing quantities for one view.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Latest signal arrival time per gate (ns).
    pub arrival: Vec<f32>,
    /// Required arrival time per gate (ns).
    pub required: Vec<f32>,
    /// Slack per gate: `required - arrival` (ns).
    pub slack: Vec<f32>,
    /// Worst negative slack over primary outputs (0 if none negative).
    pub wns: f32,
    /// Total negative slack over primary outputs.
    pub tns: f32,
    /// Clock period used.
    pub clock_period: f32,
}

/// Effective delay of gate `g` under `view`.
#[inline]
pub fn gate_delay(c: &Circuit, g: usize, view: &View) -> f32 {
    c.gates[g].kind.base_delay() * c.gates[g].delay_factor * view.corner.delay_scale
}

/// Runs a full forward/backward STA sweep for one view.
pub fn run_sta(c: &Circuit, view: &View) -> TimingReport {
    let n = c.num_gates();
    let mut arrival = vec![0.0f32; n];

    // Forward: levelized longest-path arrival propagation.
    for level in &c.levels {
        for &g in level {
            let g = g as usize;
            let at_in = c.fanin[g]
                .iter()
                .map(|&f| arrival[f as usize])
                .fold(0.0f32, f32::max);
            arrival[g] = at_in + gate_delay(c, g, view);
        }
    }

    // Backward: required times from the clock constraint at endpoints.
    let period = view.mode.clock_period;
    let mut required = vec![f32::INFINITY; n];
    for &po in &c.primary_outputs {
        required[po as usize] = period;
    }
    for level in c.levels.iter().rev() {
        for &g in level {
            let g = g as usize;
            // required(g) = min over fanouts s of required(s) - delay(s).
            let rq = c.fanout[g]
                .iter()
                .map(|&s| {
                    let s = s as usize;
                    required[s] - gate_delay(c, s, view)
                })
                .fold(f32::INFINITY, f32::min);
            if rq < required[g] {
                required[g] = rq;
            }
        }
    }
    // Gates with no path to an output keep required = +inf -> slack +inf;
    // clamp to the period for sane reporting.
    for r in required.iter_mut() {
        if !r.is_finite() {
            *r = period;
        }
    }

    let slack: Vec<f32> = required
        .iter()
        .zip(&arrival)
        .map(|(r, a)| r - a)
        .collect();

    let mut wns = 0.0f32;
    let mut tns = 0.0f32;
    for &po in &c.primary_outputs {
        let s = slack[po as usize];
        if s < 0.0 {
            wns = wns.min(s);
            tns += s;
        }
    }

    TimingReport {
        arrival,
        required,
        slack,
        wns,
        tns,
        clock_period: period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CircuitConfig, Gate, GateKind};
    use crate::views::{Corner, Mode};

    fn test_view(scale: f32, period: f32) -> View {
        View {
            corner: Corner {
                name: "test".into(),
                delay_scale: scale,
                ocv: 0.05,
            },
            mode: Mode {
                name: "func".into(),
                clock_period: period,
            },
            seed: 0,
        }
    }

    /// Hand-built circuit: in0 -> inv -> and <- in1, and -> out.
    /// Arrival(out) = delay(inv) + delay(and).
    fn tiny() -> Circuit {
        let gates = vec![
            Gate { kind: GateKind::Input, delay_factor: 1.0 },  // 0
            Gate { kind: GateKind::Input, delay_factor: 1.0 },  // 1
            Gate { kind: GateKind::Inv, delay_factor: 1.0 },    // 2
            Gate { kind: GateKind::And, delay_factor: 1.0 },    // 3
            Gate { kind: GateKind::Output, delay_factor: 1.0 }, // 4
        ];
        let fanin = vec![vec![], vec![], vec![0], vec![2, 1], vec![3]];
        let mut fanout = vec![Vec::new(); 5];
        for (g, fi) in fanin.iter().enumerate() {
            for &s in fi {
                fanout[s as usize].push(g as u32);
            }
        }
        let levels = vec![vec![0, 1], vec![2], vec![3], vec![4]];
        Circuit {
            gates,
            fanin,
            fanout,
            primary_inputs: vec![0, 1],
            primary_outputs: vec![4],
            levels,
        }
    }

    #[test]
    fn arrival_is_longest_path() {
        let c = tiny();
        let v = test_view(1.0, 1.0);
        let r = run_sta(&c, &v);
        let expect = GateKind::Inv.base_delay() + GateKind::And.base_delay();
        assert!((r.arrival[4] - expect).abs() < 1e-6);
        // Through the short side (in1 -> and) arrival would be smaller:
        // longest path must win.
        assert!(r.arrival[3] > GateKind::And.base_delay());
    }

    #[test]
    fn slack_positive_under_loose_clock_negative_under_tight() {
        let c = tiny();
        let loose = run_sta(&c, &test_view(1.0, 1.0));
        assert!(loose.wns == 0.0 && loose.tns == 0.0);
        assert!(loose.slack[4] > 0.0);

        let tight = run_sta(&c, &test_view(1.0, 0.001));
        assert!(tight.wns < 0.0);
        assert!(tight.tns <= tight.wns);
    }

    #[test]
    fn corner_scaling_scales_arrivals() {
        let c = tiny();
        let a = run_sta(&c, &test_view(1.0, 1.0));
        let b = run_sta(&c, &test_view(2.0, 1.0));
        assert!((b.arrival[4] - 2.0 * a.arrival[4]).abs() < 1e-6);
    }

    /// On any synthesized circuit, arrival computed by levelized sweep
    /// equals a reference longest-path DFS.
    #[test]
    fn matches_reference_longest_path() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 400,
            ..Default::default()
        });
        let v = test_view(1.1, 1.0);
        let r = run_sta(&c, &v);
        // Reference: process gates in id order (ids are topological by
        // construction).
        let mut reference = vec![0.0f32; c.num_gates()];
        #[allow(clippy::needless_range_loop)] // builds reference[g] from reference[<g]
        for g in 0..c.num_gates() {
            let at = c.fanin[g]
                .iter()
                .map(|&f| reference[f as usize])
                .fold(0.0f32, f32::max);
            reference[g] = at + gate_delay(&c, g, &v);
        }
        for (g, (a, want)) in r.arrival.iter().zip(&reference).enumerate() {
            assert!((a - want).abs() < 1e-5, "gate {g}: {a} vs {want}");
        }
    }

    /// Slack at every gate on a path is bounded by the endpoint slack
    /// (monotonicity sanity), and required >= arrival + slack identity.
    #[test]
    fn slack_identity() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 300,
            ..Default::default()
        });
        let r = run_sta(&c, &test_view(1.0, 0.5));
        for g in 0..c.num_gates() {
            assert!((r.slack[g] - (r.required[g] - r.arrival[g])).abs() < 1e-6);
        }
    }
}
