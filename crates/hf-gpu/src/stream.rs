//! Streams: ordered asynchronous operation queues, like `cudaStream_t`.
//!
//! Enqueue operations return immediately; the owning device's engine
//! thread executes them in per-stream FIFO order. Ordering across streams
//! is unconstrained except through [`Event`]s. The Heteroflow executor
//! keeps one stream per (worker, device) pair, the paper's "per-thread
//! CUDA stream" (§III-C).

use crate::arena::{ArenaView, DevicePtr};
use crate::cost::{CostModel, SimDuration};
use crate::device::{Device, EventWait};
use crate::error::GpuError;
use crate::event::Event;
use crate::kernel::{KernelArgs, KernelFn, LaunchConfig};
use crate::trace::OpLabel;

/// What an executed op did, for device statistics and cost accounting.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpReport {
    /// Modeled duration of the op.
    pub duration: SimDuration,
    /// Host-to-device traffic generated.
    pub h2d_bytes: u64,
    /// Device-to-host traffic generated.
    pub d2h_bytes: u64,
    /// Kernels launched (0 or 1).
    pub kernels: u64,
}

/// Closure type executed on the device engine with arena access.
pub type ExecFn =
    Box<dyn FnOnce(&mut ArenaView<'_>, &CostModel) -> Result<OpReport, GpuError> + Send>;

/// The payload of a stream operation.
pub enum OpBody {
    /// Device work: copies, kernels — anything touching the arena.
    Exec(ExecFn),
    /// A host callback executed in stream order (`cudaLaunchHostFunc`).
    Host(Box<dyn FnOnce() + Send>),
    /// Fires the event (`cudaEventRecord`).
    Record(Event),
    /// Blocks the stream until the event generation fires
    /// (`cudaStreamWaitEvent`).
    WaitEvent(EventWait),
}

impl std::fmt::Debug for OpBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpBody::Exec(_) => f.write_str("Exec"),
            OpBody::Host(_) => f.write_str("Host"),
            OpBody::Record(_) => f.write_str("Record"),
            OpBody::WaitEvent(_) => f.write_str("WaitEvent"),
        }
    }
}

/// One enqueued stream operation.
#[derive(Debug)]
pub struct Op {
    pub(crate) stream: usize,
    pub(crate) body: OpBody,
    /// Trace identity attached by the enqueuer (see [`crate::trace`]).
    pub(crate) label: Option<OpLabel>,
}

impl Op {
    /// A WaitEvent op is runnable only once its event fired; everything
    /// else is runnable when it reaches the head of its stream.
    pub(crate) fn is_runnable(&self) -> bool {
        match &self.body {
            OpBody::WaitEvent(w) => w.ready(),
            _ => true,
        }
    }
}

/// A stream handle. Cheap to clone; clones enqueue into the same queue.
#[derive(Debug, Clone)]
pub struct Stream {
    device: Device,
    index: usize,
}

impl Stream {
    /// Creates a new stream on `device`.
    pub fn new(device: &Device) -> Self {
        let index = device.register_stream();
        Self {
            device: device.clone(),
            index,
        }
    }

    /// The device this stream belongs to.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Stream index within its device (diagnostic).
    pub fn index(&self) -> usize {
        self.index
    }

    fn push(&self, body: OpBody) {
        self.push_labeled(body, None);
    }

    fn push_labeled(&self, body: OpBody, label: Option<OpLabel>) {
        self.device.enqueue(
            self.index,
            Op {
                stream: self.index,
                body,
                label,
            },
        );
    }

    /// Enqueues raw device work with arena access.
    pub fn exec(&self, f: ExecFn) {
        self.push(OpBody::Exec(f));
    }

    /// Enqueues raw device work carrying a trace label, so device-side
    /// trace events can be stitched back to the submitting task (see
    /// [`crate::trace`]).
    pub fn exec_labeled(&self, label: Option<OpLabel>, f: ExecFn) {
        self.push_labeled(OpBody::Exec(f), label);
    }

    /// Asynchronous host-to-device copy of an owned byte buffer
    /// (`cudaMemcpyAsync(dst, src, H2D, stream)` with a staging copy).
    pub fn h2d_async(&self, dst: DevicePtr, src: Vec<u8>) {
        self.exec(Box::new(move |view, cost| {
            let n = src.len();
            view.copy_in(dst, &src)?;
            Ok(OpReport {
                duration: cost.h2d(n),
                h2d_bytes: n as u64,
                ..Default::default()
            })
        }));
    }

    /// Stateful host-to-device copy: `producer` is invoked at *execution*
    /// time, so changes made by tasks ordered before this op are visible —
    /// the paper's StatefulTuple semantics for pull tasks (Listing 4).
    pub fn h2d_with(
        &self,
        dst: DevicePtr,
        producer: impl FnOnce() -> Vec<u8> + Send + 'static,
    ) {
        self.exec(Box::new(move |view, cost| {
            let src = producer();
            let n = src.len();
            view.copy_in(dst, &src)?;
            Ok(OpReport {
                duration: cost.h2d(n),
                h2d_bytes: n as u64,
                ..Default::default()
            })
        }));
    }

    /// Stateful device-to-host copy: `consumer` receives the device bytes
    /// at execution time (push-task semantics, Listing 6).
    pub fn d2h_with(
        &self,
        src: DevicePtr,
        consumer: impl FnOnce(&[u8]) + Send + 'static,
    ) {
        self.exec(Box::new(move |view, cost| {
            let bytes = view.bytes(src)?;
            let n = bytes.len();
            consumer(bytes);
            Ok(OpReport {
                duration: cost.d2h(n),
                d2h_bytes: n as u64,
                ..Default::default()
            })
        }));
    }

    /// Asynchronously fills an allocation with a byte value
    /// (`cudaMemsetAsync`).
    pub fn memset_async(&self, dst: DevicePtr, byte: u8) {
        self.exec(Box::new(move |view, cost| {
            let b = view.bytes_mut(dst)?;
            let n = b.len();
            b.fill(byte);
            Ok(OpReport {
                // Device-local fill: modeled at H2D bandwidth without the
                // PCIe latency term.
                duration: SimDuration::from_secs_f64(
                    n as f64 / cost.h2d_bytes_per_sec,
                ),
                ..Default::default()
            })
        }));
    }

    /// Asynchronous device-to-device copy between two allocations on
    /// *this* stream's device (`cudaMemcpyAsync` with `D2D`).
    pub fn d2d_async(&self, dst: DevicePtr, src: DevicePtr) {
        self.exec(Box::new(move |view, cost| {
            view.copy_d2d(dst, src)?;
            let n = src.len.min(dst.len) as usize;
            Ok(OpReport {
                duration: SimDuration::from_secs_f64(
                    n as f64 / cost.h2d_bytes_per_sec,
                ),
                ..Default::default()
            })
        }));
    }

    /// Launches a kernel over `cfg` with the given device arguments.
    /// `work_units` declares the kernel's modeled cost (abstract units;
    /// see [`CostModel::kernel`]).
    pub fn launch_kernel(
        &self,
        cfg: LaunchConfig,
        kernel: KernelFn,
        args: Vec<DevicePtr>,
        work_units: f64,
    ) {
        self.exec(Box::new(move |view, cost| {
            {
                let mut ka = KernelArgs::new(view, &args);
                kernel(&cfg, &mut ka);
            }
            Ok(OpReport {
                duration: cost.kernel(work_units),
                kernels: 1,
                ..Default::default()
            })
        }));
    }

    /// Enqueues a host callback executed in stream order.
    pub fn host_fn(&self, f: impl FnOnce() + Send + 'static) {
        self.push(OpBody::Host(Box::new(f)));
    }

    /// Records `event` into this stream; it fires when the engine reaches
    /// this point. Returns the generation that will fire.
    pub fn record_event(&self, event: &Event) -> u64 {
        let generation = event.mark_recorded();
        self.push(OpBody::Record(event.clone()));
        generation
    }

    /// Makes this stream wait (without blocking the host) until the
    /// event's most recent recording fires.
    pub fn wait_event(&self, event: &Event) {
        let generation = event.generation_target();
        self.push(OpBody::WaitEvent(EventWait {
            event: event.clone(),
            generation,
        }));
    }

    /// Blocks the calling thread until every op enqueued so far completes
    /// (`cudaStreamSynchronize`).
    pub fn synchronize(&self) {
        self.device.synchronize_stream(self.index);
    }
}

impl Event {
    /// Generation a `wait_event` enqueued now should wait for: the number
    /// of recordings made so far.
    pub(crate) fn generation_target(&self) -> u64 {
        // If never recorded, target 0 => immediately ready (CUDA treats a
        // wait on an unrecorded event as a no-op).
        self.recorded_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{GpuConfig, GpuRuntime};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn rt() -> GpuRuntime {
        GpuRuntime::new(2, GpuConfig::default())
    }

    #[test]
    fn h2d_then_d2h_round_trip() {
        let rt = rt();
        let dev = rt.device(0).unwrap();
        let s = Stream::new(&dev);
        let ptr = dev.alloc(16).unwrap();
        s.h2d_async(ptr, vec![7u8; 16]);
        let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        s.d2h_with(ptr, move |b| got2.lock().extend_from_slice(b));
        s.synchronize();
        assert_eq!(&*got.lock(), &vec![7u8; 16]);
        dev.free(ptr).unwrap();
    }

    #[test]
    fn fifo_order_within_stream() {
        let rt = rt();
        let dev = rt.device(0).unwrap();
        let s = Stream::new(&dev);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..20 {
            let log = Arc::clone(&log);
            s.host_fn(move || log.lock().push(i));
        }
        s.synchronize();
        assert_eq!(&*log.lock(), &(0..20).collect::<Vec<_>>());
    }

    #[test]
    fn event_orders_across_streams() {
        let rt = rt();
        let dev = rt.device(0).unwrap();
        let s1 = Stream::new(&dev);
        let s2 = Stream::new(&dev);
        let ev = Event::new();
        let stage = Arc::new(AtomicUsize::new(0));

        // s2 must not run its op until s1 records the event.
        let (a, b) = (Arc::clone(&stage), Arc::clone(&stage));
        s1.host_fn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            a.store(1, Ordering::SeqCst);
        });
        s1.record_event(&ev);
        s2.wait_event(&ev);
        s2.host_fn(move || {
            assert_eq!(b.load(Ordering::SeqCst), 1, "ran before event fired");
        });
        s2.synchronize();
        s1.synchronize();
        assert!(dev.take_error().is_none());
    }

    #[test]
    fn wait_on_unrecorded_event_is_noop() {
        let rt = rt();
        let dev = rt.device(0).unwrap();
        let s = Stream::new(&dev);
        let ev = Event::new();
        s.wait_event(&ev); // never recorded: must not deadlock
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        s.host_fn(move || {
            r.store(1, Ordering::SeqCst);
        });
        s.synchronize();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn kernel_launch_executes_over_grid() {
        let rt = rt();
        let dev = rt.device(1).unwrap();
        let s = Stream::new(&dev);
        let n = 1000usize;
        let ptr = dev.alloc(n * 4).unwrap();
        s.h2d_async(ptr, vec![0u8; n * 4]);
        let cfg = LaunchConfig::cover(n, 128);
        let kernel: KernelFn = Arc::new(move |cfg, args| {
            let out = args.slice_mut::<u32>(0).unwrap();
            for i in cfg.threads() {
                if i < out.len() {
                    out[i] = i as u32 * 2;
                }
            }
        });
        s.launch_kernel(cfg, kernel, vec![ptr], n as f64);
        let got: Arc<parking_lot::Mutex<Vec<u32>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        s.d2h_with(ptr, move |b| {
            g.lock().extend_from_slice(crate::plain::from_bytes::<u32>(b))
        });
        s.synchronize();
        let v = got.lock();
        assert_eq!(v.len(), n);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 * 2));
        assert_eq!(dev.stats().kernels.load(Ordering::Relaxed), 1);
        assert!(dev.busy_time() > SimDuration::ZERO);
    }

    #[test]
    fn memset_and_d2d() {
        let rt = rt();
        let dev = rt.device(0).unwrap();
        let s = Stream::new(&dev);
        let a = dev.alloc(64).unwrap();
        let b = dev.alloc(64).unwrap();
        s.memset_async(a, 0xAB);
        s.d2d_async(b, a);
        let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        s.d2h_with(b, move |bytes| g.lock().extend_from_slice(bytes));
        s.synchronize();
        assert!(dev.take_error().is_none());
        assert_eq!(&*got.lock(), &vec![0xABu8; 64]);
        dev.free(a).unwrap();
        dev.free(b).unwrap();
    }

    #[test]
    fn errors_are_captured_not_panicked() {
        let rt = rt();
        let dev = rt.device(0).unwrap();
        let s = Stream::new(&dev);
        // Copy to a pointer owned by the other device.
        let bad = DevicePtr { device: 1, offset: 0, len: 4, capacity: 4 };
        s.h2d_async(bad, vec![0u8; 4]);
        s.synchronize();
        assert!(matches!(dev.take_error(), Some(GpuError::WrongDevice { .. })));
        assert!(dev.take_error().is_none(), "error is cleared after take");
    }
}
