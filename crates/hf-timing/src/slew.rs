//! Slew (transition-time) propagation.
//!
//! Production timers propagate slews alongside arrivals: a slow input
//! transition makes a gate slower, and each gate reshapes the slew it
//! passes on. This module adds a first-order slew model to the sweep:
//!
//! * output slew: `intrinsic(kind) * scale + degradation * worst_in`
//! * effective delay: `delay * (1 + sensitivity * worst_input_slew)`
//!
//! With zero sensitivity and degradation the result collapses exactly to
//! the plain [`crate::sta::run_sta`] arrival times, which the tests use
//! as the oracle.

use crate::netlist::{Circuit, GateKind};
use crate::sta::gate_delay;
use crate::views::View;

/// First-order slew model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlewModel {
    /// How much one nanosecond of input slew inflates gate delay.
    pub delay_sensitivity: f32,
    /// Fraction of the worst input slew surviving through a gate.
    pub degradation: f32,
    /// Slew injected at primary inputs (driver transition).
    pub input_slew: f32,
}

impl Default for SlewModel {
    fn default() -> Self {
        Self {
            delay_sensitivity: 0.5,
            degradation: 0.3,
            input_slew: 0.02,
        }
    }
}

/// Intrinsic output slew per gate kind at the typical corner (ns).
pub fn intrinsic_slew(kind: GateKind) -> f32 {
    match kind {
        GateKind::Input | GateKind::Output => 0.0,
        GateKind::Inv => 0.006,
        GateKind::Buf => 0.005,
        GateKind::Nand => 0.009,
        GateKind::Nor => 0.011,
        GateKind::And => 0.012,
        GateKind::Or => 0.013,
        GateKind::Xor => 0.018,
    }
}

/// Arrival and slew per gate under the slew-aware model.
#[derive(Debug, Clone)]
pub struct SlewReport {
    /// Latest arrival per gate, slew-inflated delays (ns).
    pub arrival: Vec<f32>,
    /// Output slew per gate (ns).
    pub slew: Vec<f32>,
}

/// Forward sweep with joint arrival/slew propagation.
pub fn run_sta_with_slew(c: &Circuit, view: &View, model: &SlewModel) -> SlewReport {
    let n = c.num_gates();
    let mut arrival = vec![0.0f32; n];
    let mut slew = vec![0.0f32; n];
    for level in &c.levels {
        for &g in level {
            let g = g as usize;
            let kind = c.gates[g].kind;
            let (mut at_in, mut slew_in) = (0.0f32, 0.0f32);
            for &f in &c.fanin[g] {
                at_in = at_in.max(arrival[f as usize]);
                slew_in = slew_in.max(slew[f as usize]);
            }
            if c.fanin[g].is_empty() {
                slew_in = model.input_slew;
            }
            let base = gate_delay(c, g, view);
            arrival[g] = at_in + base * (1.0 + model.delay_sensitivity * slew_in);
            slew[g] = if matches!(kind, GateKind::Input) {
                model.input_slew
            } else {
                intrinsic_slew(kind) * c.gates[g].delay_factor * view.corner.delay_scale
                    + model.degradation * slew_in
            };
        }
    }
    SlewReport { arrival, slew }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitConfig;
    use crate::sta::run_sta;
    use crate::views::make_views;

    fn circuit(seed: u64) -> Circuit {
        Circuit::synthesize(&CircuitConfig {
            num_gates: 500,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn zero_model_collapses_to_plain_sta() {
        let c = circuit(1);
        let v = &make_views(1, 0.5)[0];
        let zero = SlewModel {
            delay_sensitivity: 0.0,
            degradation: 0.0,
            input_slew: 0.0,
        };
        let slewed = run_sta_with_slew(&c, v, &zero);
        let plain = run_sta(&c, v);
        for g in 0..c.num_gates() {
            assert!(
                (slewed.arrival[g] - plain.arrival[g]).abs() < 1e-5,
                "gate {g}: {} vs {}",
                slewed.arrival[g],
                plain.arrival[g]
            );
        }
    }

    #[test]
    fn slew_inflates_arrivals_monotonically() {
        let c = circuit(2);
        let v = &make_views(1, 0.5)[0];
        let plain = run_sta(&c, v);
        let slewed = run_sta_with_slew(&c, v, &SlewModel::default());
        for g in 0..c.num_gates() {
            assert!(
                slewed.arrival[g] >= plain.arrival[g] - 1e-6,
                "slew made gate {g} faster"
            );
        }
        // Strictly slower somewhere (the model is not a no-op).
        let po = c.primary_outputs[0] as usize;
        assert!(slewed.arrival[po] > plain.arrival[po]);
    }

    #[test]
    fn slews_are_bounded_by_geometric_series() {
        // With degradation d < 1 and intrinsic bounded by S, steady-state
        // slew is at most S_in + S / (1 - d) for any depth.
        let c = circuit(3);
        let v = &make_views(1, 0.5)[0];
        let m = SlewModel::default();
        let r = run_sta_with_slew(&c, v, &m);
        let s_max = 0.018f32 * 1.1 * 2.0; // worst intrinsic * factor * corner headroom
        let bound = m.input_slew + s_max / (1.0 - m.degradation);
        for (g, &s) in r.slew.iter().enumerate() {
            assert!(s >= 0.0);
            assert!(s <= bound, "gate {g} slew {s} above bound {bound}");
        }
    }

    #[test]
    fn higher_input_slew_never_speeds_things_up() {
        let c = circuit(4);
        let v = &make_views(1, 0.5)[0];
        let slow_drivers = SlewModel {
            input_slew: 0.1,
            ..Default::default()
        };
        let fast_drivers = SlewModel {
            input_slew: 0.001,
            ..Default::default()
        };
        let slow = run_sta_with_slew(&c, v, &slow_drivers);
        let fast = run_sta_with_slew(&c, v, &fast_drivers);
        for g in 0..c.num_gates() {
            assert!(slow.arrival[g] >= fast.arrival[g] - 1e-6, "gate {g}");
        }
    }
}
