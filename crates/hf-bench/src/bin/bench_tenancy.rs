//! Multi-tenant tail-latency benchmark: FIFO vs weighted-fair admission
//! on one shared fleet, plus the solo-tenant overhead of the fleet path.
//!
//! The mixed scenario models a serving fleet shared by two tenants: a
//! **batch** tenant dumps a backlog of long jobs at t=0, while a
//! **small** latency-sensitive tenant (weight 8) submits short jobs on a
//! steady period. Under FIFO the small tenant's jobs queue behind the
//! whole backlog, so its p99 tracks the backlog depth; under start-time
//! fair queueing each small job is admitted at the next free slot, so
//! its p99 tracks one job's service time. Aggregate throughput is the
//! same either way — the fleet never idles a slot while work is queued —
//! which is exactly the claim: fairness reshapes *who waits*, not how
//! much work gets done.
//!
//! Each job is one host task that holds its in-flight slot for the job's
//! service time (modeling device occupancy) and stamps its completion
//! instant, so per-job latency is measured at the moment of completion
//! rather than at `wait` return.
//!
//! The solo section reruns a 50-task graph back-to-back through a
//! one-tenant fleet and through `Executor::run` directly; the fleet's
//! admission layer must cost within a few percent of the direct path.
//!
//! Usage: `cargo run --release -p hf-bench --bin bench_tenancy --
//! [--smoke] [--out BENCH_tenancy.json]`

use hf_bench::cli::Args;
use hf_core::{
    AdmissionPolicy, Executor, Fifo, Fleet, FleetConfig, Heteroflow, TenantConfig, WeightedFair,
};
use parking_lot::Mutex;
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Scenario {
    batch_jobs: usize,
    batch_ms: u64,
    small_jobs: usize,
    small_ms: u64,
    small_period_ms: u64,
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let out = args
        .get_str("out")
        .unwrap_or("BENCH_tenancy.json")
        .to_string();

    let sc = if smoke {
        Scenario {
            batch_jobs: 8,
            batch_ms: 6,
            small_jobs: 8,
            small_ms: 1,
            small_period_ms: 2,
        }
    } else {
        Scenario {
            batch_jobs: 24,
            batch_ms: 8,
            small_jobs: 16,
            small_ms: 1,
            small_period_ms: 3,
        }
    };

    let fifo = run_mixed(&sc, Box::new(Fifo));
    let wfq = run_mixed(&sc, Box::<WeightedFair>::default());
    let solo_runs = if smoke { 1200 } else { 2400 };
    let solo = run_solo(solo_runs);

    let doc = json!({
        "bench": "tenancy",
        "smoke": smoke,
        "scenario": json!({
            "max_inflight": 2,
            "batch_jobs": sc.batch_jobs,
            "batch_service_ms": sc.batch_ms,
            "small_jobs": sc.small_jobs,
            "small_service_ms": sc.small_ms,
            "small_period_ms": sc.small_period_ms,
        }),
        "fifo": fifo.to_json(),
        "weighted_fair": wfq.to_json(),
        "small_p99_speedup": fifo.small.p99.as_secs_f64() / wfq.small.p99.as_secs_f64(),
        "solo": solo.to_json(),
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out, &text).expect("write report");
    println!("{text}");
    println!("\nwrote {out}");

    assert!(
        wfq.small.p99 < fifo.small.p99,
        "weighted-fair must cut the small tenant's p99 ({:?}) below FIFO's ({:?})",
        wfq.small.p99,
        fifo.small.p99
    );
    assert!(
        wfq.aggregate_jobs_per_sec >= 0.95 * fifo.aggregate_jobs_per_sec,
        "weighted-fair aggregate throughput ({:.2} jobs/s) fell below FIFO's \
         ({:.2} jobs/s)",
        wfq.aggregate_jobs_per_sec,
        fifo.aggregate_jobs_per_sec
    );
    // Target is within ~5% of the direct path; the gate leaves 2% of
    // slack for timer noise on small shared runners (the reported ratio
    // is already a median over interleaved pairs).
    assert!(
        solo.ratio >= 0.93,
        "solo fleet throughput must stay within ~5% of the direct path \
         (got {:.3}x: fleet {:.0} vs direct {:.0} tasks/s)",
        solo.ratio,
        solo.fleet_tasks_per_sec,
        solo.direct_tasks_per_sec
    );
}

#[derive(Clone)]
struct TenantMeasured {
    p50: Duration,
    p99: Duration,
    mean: Duration,
    jobs: usize,
}

impl TenantMeasured {
    fn from_latencies(mut lat: Vec<Duration>) -> Self {
        lat.sort_unstable();
        let jobs = lat.len();
        let mean = lat.iter().sum::<Duration>() / jobs as u32;
        Self {
            p50: lat[jobs / 2],
            p99: lat[(jobs * 99 / 100).min(jobs - 1)],
            mean,
            jobs,
        }
    }

    fn to_json(&self) -> serde_json::Value {
        json!({
            "jobs": self.jobs,
            "p50_ms": self.p50.as_secs_f64() * 1e3,
            "p99_ms": self.p99.as_secs_f64() * 1e3,
            "mean_ms": self.mean.as_secs_f64() * 1e3,
        })
    }
}

struct MixedMeasured {
    policy: &'static str,
    batch: TenantMeasured,
    small: TenantMeasured,
    aggregate_jobs_per_sec: f64,
}

impl MixedMeasured {
    fn to_json(&self) -> serde_json::Value {
        json!({
            "policy": self.policy,
            "aggregate_jobs_per_sec": self.aggregate_jobs_per_sec,
            "batch": self.batch.to_json(),
            "small": self.small.to_json(),
        })
    }
}

/// One job: a single host task that occupies its in-flight slot for
/// `service_ms` and records the completion instant.
fn job(name: &str, service_ms: u64, done: &Arc<Mutex<Option<Instant>>>) -> Heteroflow {
    let g = Heteroflow::new(name);
    let done = Arc::clone(done);
    g.host("serve", move || {
        std::thread::sleep(Duration::from_millis(service_ms));
        *done.lock() = Some(Instant::now());
    });
    g
}

fn run_mixed(sc: &Scenario, policy: Box<dyn AdmissionPolicy>) -> MixedMeasured {
    let policy_name = policy.name();
    let fleet = Fleet::with_policy(
        Executor::new(2, 1),
        FleetConfig {
            max_inflight: 2,
            ..FleetConfig::default()
        },
        policy,
    );
    let batch = fleet.register("batch", TenantConfig::default());
    let small = fleet.register(
        "small",
        TenantConfig {
            weight: 8,
            ..TenantConfig::default()
        },
    );

    // (submit instant, completion slot) per job, per tenant.
    let mut batch_jobs = Vec::with_capacity(sc.batch_jobs);
    let mut small_jobs = Vec::with_capacity(sc.small_jobs);
    let t0 = Instant::now();
    for i in 0..sc.batch_jobs {
        let done = Arc::new(Mutex::new(None));
        let g = job(&format!("batch_{i}"), sc.batch_ms, &done);
        fleet.submit(&batch, &g).expect("no quotas configured");
        batch_jobs.push((Instant::now(), done));
    }
    for i in 0..sc.small_jobs {
        std::thread::sleep(Duration::from_millis(sc.small_period_ms));
        let done = Arc::new(Mutex::new(None));
        let g = job(&format!("small_{i}"), sc.small_ms, &done);
        fleet.submit(&small, &g).expect("no quotas configured");
        small_jobs.push((Instant::now(), done));
    }
    fleet.wait_idle();
    let total = t0.elapsed();

    let collect = |jobs: &[(Instant, Arc<Mutex<Option<Instant>>>)]| {
        jobs.iter()
            .map(|(submitted, done)| {
                done.lock()
                    .expect("job completed before wait_idle returned")
                    .duration_since(*submitted)
            })
            .collect::<Vec<_>>()
    };
    MixedMeasured {
        policy: policy_name,
        batch: TenantMeasured::from_latencies(collect(&batch_jobs)),
        small: TenantMeasured::from_latencies(collect(&small_jobs)),
        aggregate_jobs_per_sec: (sc.batch_jobs + sc.small_jobs) as f64 / total.as_secs_f64(),
    }
}

struct SoloMeasured {
    direct_tasks_per_sec: f64,
    fleet_tasks_per_sec: f64,
    ratio: f64,
}

impl SoloMeasured {
    fn to_json(&self) -> serde_json::Value {
        json!({
            "direct_tasks_per_sec": self.direct_tasks_per_sec,
            "fleet_tasks_per_sec": self.fleet_tasks_per_sec,
            "ratio": self.ratio,
        })
    }
}

/// A 50-task graph of independent trivial host tasks: all submission
/// overhead, no service time — the worst case for any admission layer.
fn solo_graph() -> Heteroflow {
    let g = Heteroflow::new("solo_50");
    for i in 0..50 {
        g.host(&format!("t{i}"), || {});
    }
    g
}

const SOLO_TASKS: usize = 50;

/// Tasks/sec of `runs` back-to-back executions.
fn measure(runs: usize, once: &mut impl FnMut(usize)) -> f64 {
    let t = Instant::now();
    once(runs);
    (runs * SOLO_TASKS) as f64 / t.elapsed().as_secs_f64()
}

fn run_solo(runs: usize) -> SoloMeasured {
    let ex = Executor::new(2, 1);
    let g = solo_graph();
    let fleet = Fleet::new(Executor::new(2, 1), FleetConfig::default());
    let tenant = fleet.register("solo", TenantConfig::default());
    let gf = solo_graph();

    // Warm both paths (placement cache, first freeze) before timing.
    ex.run(&g).wait().expect("warmup");
    fleet
        .submit(&tenant, &gf)
        .expect("no quotas")
        .wait()
        .expect("warmup");

    let mut run_direct = |n: usize| {
        for _ in 0..n {
            ex.run(&g).wait().expect("direct run");
        }
    };
    let mut run_fleet = |n: usize| {
        for _ in 0..n {
            fleet
                .submit(&tenant, &gf)
                .expect("no quotas")
                .wait()
                .expect("fleet run");
        }
    };

    // Interleave the reps — one direct, one fleet per iteration — so
    // both paths sample the same ambient-load profile. The overhead
    // ratio is taken per pair (within-pair noise is correlated, so it
    // cancels) and reported as the median pair, which is robust to a
    // single noise-contaminated rep in either direction.
    let mut direct = f64::MIN;
    let mut through_fleet = f64::MIN;
    let mut ratios = Vec::with_capacity(7);
    for _ in 0..7 {
        let d = measure(runs, &mut run_direct);
        let f = measure(runs, &mut run_fleet);
        direct = direct.max(d);
        through_fleet = through_fleet.max(f);
        ratios.push(f / d);
    }
    ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    let ratio = ratios[ratios.len() / 2];

    SoloMeasured {
        direct_tasks_per_sec: direct,
        fleet_tasks_per_sec: through_fleet,
        ratio,
    }
}
