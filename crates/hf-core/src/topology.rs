//! Topologies: per-submission execution state, and the future returned to
//! callers.
//!
//! "When a graph is submitted to an executor, a special data structure
//! called *topology* is created to marshal execution parameters and
//! runtime metadata ... The communication is based on a shared state
//! managed by a pair of C++ promise and future objects" (§III-C).
//!
//! Beyond the paper's promise/future pair, the topology carries the
//! fault-tolerance state of one submission: per-node attempt counters for
//! the retry policy, per-node `round_ok` flags that let device failover
//! replay exactly the invalidated part of a round, and the cooperative
//! cancellation flag shared with every clone of the [`RunFuture`].

use crate::error::HfError;
use crate::graph::{FrozenGraph, GraphShared};
use crate::placement::Placement;
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Poll, Waker};
use std::time::{Duration, Instant};

/// Shared promise/future state of one submission.
pub(crate) struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
}

#[derive(Default)]
struct CompletionState {
    result: Option<Result<(), HfError>>,
    wakers: Vec<Waker>,
}

impl Completion {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(CompletionState::default()),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, result: Result<(), HfError>) {
        let mut st = self.state.lock();
        if st.result.is_some() {
            return;
        }
        st.result = Some(result);
        let wakers = std::mem::take(&mut st.wakers);
        self.cv.notify_all();
        drop(st);
        for w in wakers {
            w.wake();
        }
    }

    fn wait(&self) -> Result<(), HfError> {
        let mut st = self.state.lock();
        while st.result.is_none() {
            self.cv.wait(&mut st);
        }
        st.result.clone().expect("checked above")
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<(), HfError>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(r) = &st.result {
                return Some(r.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_for(&mut st, deadline - now);
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().result.is_some()
    }
}

/// Future returned by [`crate::Executor::run`] and friends. All run
/// methods are non-blocking: "issuing a run on a graph returns immediately
/// with a C++ future object" (§III-B). Supports blocking
/// ([`RunFuture::wait`]), deadline-bounded ([`RunFuture::wait_timeout`]),
/// and async (`.await`) consumption, plus cooperative cancellation
/// ([`RunFuture::cancel`]). Clones share the same run.
#[derive(Clone)]
pub struct RunFuture {
    pub(crate) completion: Arc<Completion>,
    /// Cooperative cancellation flag, shared with the topology: checked
    /// at task boundaries, round boundaries, and inside pending GPU
    /// stream operations.
    pub(crate) cancel: Arc<AtomicBool>,
    /// Process-unique id of this submission, shared with the lifecycle
    /// events the run emits (`0` for immediately-ready futures, which
    /// never emit events).
    pub(crate) run_id: u64,
}

/// A detached handle to one run, obtained with [`RunFuture::handle`].
/// Cheap to clone and safe to hold after the future is consumed; used by
/// health monitors to watch progress and trip cooperative cancellation.
#[derive(Clone)]
pub struct CancelHandle {
    completion: Arc<Completion>,
    cancel: Arc<AtomicBool>,
    run_id: u64,
}

impl CancelHandle {
    /// Requests cooperative cancellation (see [`RunFuture::cancel`]).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// True once the run has finished (success or error).
    pub fn is_done(&self) -> bool {
        self.completion.is_done()
    }

    /// True once cancellation has been requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// The run's process-unique id (see [`RunFuture::run_id`]).
    pub fn run_id(&self) -> u64 {
        self.run_id
    }
}

impl std::fmt::Debug for CancelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelHandle")
            .field("run_id", &self.run_id)
            .field("done", &self.is_done())
            .finish()
    }
}

impl std::fmt::Debug for RunFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunFuture")
            .field("done", &self.is_done())
            .field("cancel_requested", &self.cancel.load(Ordering::Relaxed))
            .finish()
    }
}

impl RunFuture {
    /// Blocks until the run finishes; returns its result.
    pub fn wait(&self) -> Result<(), HfError> {
        self.completion.wait()
    }

    /// Blocks for at most `timeout`. Returns `None` when the deadline
    /// expired with the run still in flight (the run keeps going — call
    /// `wait*` again or [`RunFuture::cancel`] it), otherwise the result.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<(), HfError>> {
        self.completion.wait_timeout(timeout)
    }

    /// Requests cooperative cancellation. Non-blocking: in-flight task
    /// bodies finish, everything not yet started is skipped (including
    /// ops already enqueued on GPU streams), and the run completes with
    /// [`HfError::Cancelled`]. Cancelling a finished run is a no-op.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// True once the run has finished (success or error).
    pub fn is_done(&self) -> bool {
        self.completion.is_done()
    }

    /// Process-unique id of this submission. Lifecycle events recorded by
    /// a flight recorder carry the same id, so a health monitor can map a
    /// future to its event stream (`0` for immediately-ready futures,
    /// which never execute and never emit events).
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// A detached, cloneable handle to this run's completion and
    /// cancellation state — for monitor threads (watchdogs, deadline
    /// enforcers) that run beside whoever owns the future itself.
    pub fn handle(&self) -> CancelHandle {
        CancelHandle {
            completion: Arc::clone(&self.completion),
            cancel: Arc::clone(&self.cancel),
            run_id: self.run_id,
        }
    }

    /// An already-completed future (empty graphs, zero repeats).
    pub(crate) fn ready(result: Result<(), HfError>) -> Self {
        let c = Completion::new();
        c.complete(result);
        Self {
            completion: c,
            cancel: Arc::new(AtomicBool::new(false)),
            run_id: 0,
        }
    }
}

impl std::future::Future for RunFuture {
    type Output = Result<(), HfError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> Poll<Self::Output> {
        let mut st = self.completion.state.lock();
        if let Some(r) = &st.result {
            Poll::Ready(r.clone())
        } else {
            if !st.wakers.iter().any(|w| w.will_wake(cx.waker())) {
                st.wakers.push(cx.waker().clone());
            }
            Poll::Pending
        }
    }
}

/// Per-submission runtime state: join counters, round bookkeeping, device
/// placement, the stopping predicate, and the completion promise.
pub(crate) struct Topology {
    pub(crate) graph_shared: Arc<GraphShared>,
    pub(crate) frozen: Arc<FrozenGraph>,
    /// Process-unique submission id (shared with the [`RunFuture`] and
    /// every lifecycle event of this run).
    pub(crate) run_id: u64,
    /// Graph name as a shared string, cloned into lifecycle events
    /// without reallocating.
    pub(crate) graph_label: Arc<str>,
    /// Current device placement. Initially shared with the graph's
    /// scheduling cache; device failover swaps in a re-placed plan.
    pub(crate) placement: RwLock<Arc<Placement>>,
    /// Remaining unmet dependencies per node, reset each round.
    pub(crate) join: Vec<AtomicUsize>,
    /// Nodes not yet finished this round.
    pub(crate) pending: AtomicUsize,
    /// Stopping predicate: `true` means stop (checked before each round).
    pub(crate) predicate: Mutex<Box<dyn FnMut() -> bool + Send>>,
    pub(crate) completion: Arc<Completion>,
    /// First error observed during execution.
    pub(crate) error: Mutex<Option<HfError>>,
    /// Set once an error occurs: remaining task bodies are skipped while
    /// the round drains.
    pub(crate) cancelled: AtomicBool,
    /// Cooperative cancellation requested via [`RunFuture::cancel`].
    pub(crate) cancel: Arc<AtomicBool>,
    /// Rounds completed (diagnostic).
    pub(crate) rounds: AtomicUsize,
    /// Task fusion plan (§III-C "task fusing"). Initially shared with the
    /// graph's scheduling cache; failover swaps in a replay-masked plan.
    pub(crate) fusion: RwLock<Arc<FusionPlan>>,
    /// The fusion plan is a failover replay mask and must be recomputed
    /// for the new placement before the next full round.
    pub(crate) fusion_stale: AtomicBool,
    /// Failed attempts per node this round (retry-policy bookkeeping).
    pub(crate) attempts: Vec<AtomicU32>,
    /// Whether each node completed successfully this round. Device
    /// failover uses this to replay exactly the unfinished/invalidated
    /// part of the round.
    pub(crate) round_ok: Vec<AtomicBool>,
    /// A device loss requested failover; handled when the round drains.
    /// Holds the triggering error so a failed failover reports it.
    pub(crate) failover: Mutex<Option<HfError>>,
    /// Fast-path mirror of `failover.is_some()`: workers skip task bodies
    /// while a failover is pending so half-failed state never propagates.
    pub(crate) failover_pending: AtomicBool,
    /// Failovers performed for this submission (bounded by the policy).
    pub(crate) failovers: AtomicU32,
    /// Slot in the executor's topology registry while this topology is in
    /// flight; `u32::MAX` before registration. Work tokens pack this slot
    /// with a node index, so queued items carry no heap pointer.
    pub(crate) slot: AtomicU32,
}

impl Topology {
    pub(crate) fn new(
        graph_shared: Arc<GraphShared>,
        frozen: Arc<FrozenGraph>,
        run_id: u64,
        placement: Arc<Placement>,
        fusion: Arc<FusionPlan>,
        predicate: Box<dyn FnMut() -> bool + Send>,
    ) -> Arc<Self> {
        let n = frozen.nodes.len();
        let join = frozen
            .nodes
            .iter()
            .map(|nd| AtomicUsize::new(nd.num_deps))
            .collect();
        let graph_label: Arc<str> = Arc::from(frozen.name.as_str());
        Arc::new(Self {
            graph_shared,
            frozen: Arc::clone(&frozen),
            run_id,
            graph_label,
            placement: RwLock::new(placement),
            join,
            pending: AtomicUsize::new(n),
            predicate: Mutex::new(predicate),
            completion: Completion::new(),
            error: Mutex::new(None),
            cancelled: AtomicBool::new(false),
            cancel: Arc::new(AtomicBool::new(false)),
            rounds: AtomicUsize::new(0),
            fusion: RwLock::new(fusion),
            fusion_stale: AtomicBool::new(false),
            attempts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            round_ok: (0..n).map(|_| AtomicBool::new(false)).collect(),
            failover: Mutex::new(None),
            failover_pending: AtomicBool::new(false),
            failovers: AtomicU32::new(0),
            slot: AtomicU32::new(u32::MAX),
        })
    }

    /// Current placement (failover may swap it between rounds).
    pub(crate) fn placement(&self) -> Arc<Placement> {
        Arc::clone(&self.placement.read())
    }

    /// Current fusion plan (failover may swap it between rounds).
    pub(crate) fn fusion(&self) -> Arc<FusionPlan> {
        Arc::clone(&self.fusion.read())
    }

    /// True once the caller requested cancellation.
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// Records a device-loss failover request; the first cause wins.
    pub(crate) fn request_failover(&self, cause: HfError) {
        let mut f = self.failover.lock();
        if f.is_none() {
            *f = Some(cause);
        }
        self.failover_pending.store(true, Ordering::Release);
    }

    /// Resets per-round counters for the next repetition.
    pub(crate) fn reset_round(&self) {
        for (j, n) in self.join.iter().zip(&self.frozen.nodes) {
            j.store(n.num_deps, Ordering::Relaxed);
        }
        for a in &self.attempts {
            a.store(0, Ordering::Relaxed);
        }
        for ok in &self.round_ok {
            ok.store(false, Ordering::Relaxed);
        }
        self.pending
            .store(self.frozen.nodes.len(), Ordering::Release);
    }

    /// Records the first error and cancels remaining bodies.
    pub(crate) fn fail(&self, e: HfError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.cancelled.store(true, Ordering::Release);
    }

    /// The final result for the completion promise.
    pub(crate) fn result(&self) -> Result<(), HfError> {
        match self.error.lock().clone() {
            Some(e) => Err(e),
            None if self.cancel_requested() => Err(HfError::Cancelled),
            None => Ok(()),
        }
    }
}

/// Precomputed GPU task-fusion chains (§III-C "task fusing"). Pure
/// function of (frozen graph, placement, fusion flag), so the executor
/// caches it alongside the placement and reuses it across submissions of
/// an unchanged graph.
pub(crate) struct FusionPlan {
    /// `next[v]` chains v to a GPU successor dispatched on the same
    /// stream submission; members of a chain (non-heads) are never
    /// scheduled individually.
    pub(crate) next: Vec<Option<u32>>,
    /// True for chain members (every node with a fused predecessor).
    pub(crate) member: Vec<bool>,
}

impl FusionPlan {
    /// Identifies fusible GPU chains: node `v` fuses to its successor `w`
    /// when `v` is a GPU task, `w` is a *kernel or push* task whose only
    /// dependency is `v`, and both are placed on the same device. Pull
    /// tasks are never fused as members (their device allocation sizes
    /// bind at dispatch time and must observe their host-side
    /// predecessors).
    pub(crate) fn compute(
        frozen: &FrozenGraph,
        placement: &crate::placement::Placement,
        enabled: bool,
    ) -> Self {
        Self::plan(frozen, placement, enabled, None)
    }

    /// [`FusionPlan::compute`] restricted to the `active` nodes — the
    /// failover replay plan. A chain must not lead from an
    /// already-finished head into a replayed member (the head would never
    /// be dispatched again), so both endpoints must be active.
    pub(crate) fn compute_masked(
        frozen: &FrozenGraph,
        placement: &crate::placement::Placement,
        enabled: bool,
        active: &[bool],
    ) -> Self {
        Self::plan(frozen, placement, enabled, Some(active))
    }

    fn plan(
        frozen: &FrozenGraph,
        placement: &crate::placement::Placement,
        enabled: bool,
        active: Option<&[bool]>,
    ) -> Self {
        use crate::graph::TaskKind;
        let n = frozen.nodes.len();
        let mut next = vec![None; n];
        let mut member = vec![false; n];
        if !enabled {
            return Self { next, member };
        }
        let is_active = |i: usize| active.is_none_or(|a| a[i]);
        #[allow(clippy::needless_range_loop)] // v indexes three parallel arrays
        for v in 0..n {
            if !is_active(v) {
                continue;
            }
            let vk = frozen.nodes[v].work.kind();
            let v_gpu = matches!(vk, TaskKind::Pull | TaskKind::Push | TaskKind::Kernel);
            if !v_gpu || frozen.nodes[v].succ.len() != 1 {
                continue;
            }
            let w = frozen.nodes[v].succ[0];
            let wk = frozen.nodes[w].work.kind();
            let w_fusible = matches!(wk, TaskKind::Push | TaskKind::Kernel);
            if w_fusible
                && is_active(w)
                && frozen.nodes[w].num_deps == 1
                && placement.device_of[v] == placement.device_of[w]
                && !member[w]
            {
                next[v] = Some(w as u32);
                member[w] = true;
            }
        }
        Self { next, member }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_wait_and_poll() {
        let c = Completion::new();
        let fut = RunFuture {
            completion: Arc::clone(&c),
            cancel: Arc::new(AtomicBool::new(false)),
            run_id: 0,
        };
        assert!(!fut.is_done());
        c.complete(Ok(()));
        assert!(fut.is_done());
        assert!(fut.wait().is_ok());
        // Second completion is ignored.
        c.complete(Err(HfError::ExecutorShutDown));
        assert!(fut.wait().is_ok());
    }

    #[test]
    fn ready_future() {
        let f = RunFuture::ready(Err(HfError::ExecutorShutDown));
        assert!(f.is_done());
        assert_eq!(f.wait(), Err(HfError::ExecutorShutDown));
    }

    #[test]
    fn wait_timeout_expires_then_succeeds() {
        let c = Completion::new();
        let fut = RunFuture {
            completion: Arc::clone(&c),
            cancel: Arc::new(AtomicBool::new(false)),
            run_id: 0,
        };
        assert_eq!(fut.wait_timeout(Duration::from_millis(20)), None);
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            c2.complete(Ok(()));
        });
        assert_eq!(fut.wait_timeout(Duration::from_secs(10)), Some(Ok(())));
        // Completed future: any timeout returns immediately.
        assert_eq!(fut.wait_timeout(Duration::ZERO), Some(Ok(())));
        t.join().unwrap();
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let c = Completion::new();
        let fut = RunFuture {
            completion: c,
            cancel: Arc::new(AtomicBool::new(false)),
            run_id: 0,
        };
        let clone = fut.clone();
        clone.cancel();
        assert!(fut.cancel.load(Ordering::Acquire));
    }

    #[test]
    fn future_is_pollable() {
        // Poll with a no-op waker through a minimal block_on.
        let c = Completion::new();
        let fut = RunFuture {
            completion: Arc::clone(&c),
            cancel: Arc::new(AtomicBool::new(false)),
            run_id: 0,
        };
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            c2.complete(Ok(()));
        });
        let result = pollster_block_on(fut);
        assert!(result.is_ok());
        t.join().unwrap();
    }

    /// Minimal executor for testing `impl Future` without external deps.
    fn pollster_block_on<F: std::future::Future>(fut: F) -> F::Output {
        use std::sync::mpsc;
        use std::task::{Context, RawWaker, RawWakerVTable};
        let (tx, rx) = mpsc::channel::<()>();

        fn raw(tx: *const ()) -> RawWaker {
            RawWaker::new(tx, &VTABLE)
        }
        unsafe fn clone(tx: *const ()) -> RawWaker {
            let t = &*(tx as *const mpsc::Sender<()>);
            let boxed = Box::new(t.clone());
            raw(Box::into_raw(boxed) as *const ())
        }
        unsafe fn wake(tx: *const ()) {
            let t = Box::from_raw(tx as *mut mpsc::Sender<()>);
            let _ = t.send(());
        }
        unsafe fn wake_by_ref(tx: *const ()) {
            let t = &*(tx as *const mpsc::Sender<()>);
            let _ = t.send(());
        }
        unsafe fn drop_waker(tx: *const ()) {
            drop(Box::from_raw(tx as *mut mpsc::Sender<()>));
        }
        static VTABLE: RawWakerVTable =
            RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);

        let boxed = Box::new(tx);
        let waker =
            unsafe { std::task::Waker::from_raw(raw(Box::into_raw(boxed) as *const ())) };
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    let _ = rx.recv();
                }
            }
        }
    }
}
