//! Live health exposition: a dependency-free HTTP endpoint serving
//! Prometheus metrics, the watchdog verdict, and flight-recorder run
//! summaries.
//!
//! The server is deliberately tiny — a blocking [`TcpListener`] accept
//! loop on one thread, `Connection: close` per request — because its job
//! is introspection, not traffic: a scraper polls `/metrics` every few
//! seconds, an operator curls `/health` when something looks wedged.
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition: the flight recorder's
//!   latency-attribution histograms plus whatever collectors the
//!   [`HealthHub`] is wired with (executor stats, device/pool counters).
//! * `GET /health` — the watchdog's JSON verdict (overall severity,
//!   per-run state, the structured health-event log).
//! * `GET /runs` — flight-recorder run summaries as JSON.
//! * `GET /flight` — the full flight-recorder dump (every retained run's
//!   black box).
//! * `GET /tenants` — per-tenant latency attribution plus the wired
//!   fleet snapshot (multi-tenant serving), as JSON.

use crate::health::{FlightRecorder, Watchdog};
use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use serde_json::{Map, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Extra metric source: a closure filling a [`MetricsRegistry`] at
/// scrape time (executor snapshots, GPU runtime counters, …).
pub type Collector = Box<dyn Fn(&MetricsRegistry) + Send + Sync>;

/// Scrape-time tenant source: a closure returning a JSON document (a
/// fleet snapshot) merged into `/tenants` responses.
pub type TenantSource = Box<dyn Fn() -> String + Send + Sync>;

/// Aggregates the health surfaces one process exposes: the flight
/// recorder, an optional watchdog, and scrape-time metric collectors.
pub struct HealthHub {
    recorder: Arc<FlightRecorder>,
    watchdog: Mutex<Option<Arc<Watchdog>>>,
    collectors: Mutex<Vec<Collector>>,
    tenant_source: Mutex<Option<TenantSource>>,
}

impl HealthHub {
    /// A hub over `recorder`, with no watchdog or collectors yet.
    pub fn new(recorder: Arc<FlightRecorder>) -> Arc<Self> {
        Arc::new(Self {
            recorder,
            watchdog: Mutex::new(None),
            collectors: Mutex::new(Vec::new()),
            tenant_source: Mutex::new(None),
        })
    }

    /// The hub's recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Wires a watchdog; `/health` serves its verdict.
    pub fn set_watchdog(&self, wd: Arc<Watchdog>) {
        *self.watchdog.lock() = Some(wd);
    }

    /// Adds a scrape-time collector, called on every `/metrics` request.
    pub fn add_collector(&self, f: impl Fn(&MetricsRegistry) + Send + Sync + 'static) {
        self.collectors.lock().push(Box::new(f));
    }

    /// Wires a scrape-time tenant source — typically
    /// `move || serde_json::to_string(&fleet.snapshot())` — whose JSON is
    /// merged into `/tenants` responses as the `fleet` field, next to the
    /// recorder's per-tenant latency attribution.
    pub fn set_tenant_source(&self, f: impl Fn() -> String + Send + Sync + 'static) {
        *self.tenant_source.lock() = Some(Box::new(f));
    }

    /// Renders the `/metrics` document (Prometheus text).
    pub fn metrics_text(&self) -> String {
        self.recorder.pump();
        let reg = MetricsRegistry::new();
        self.recorder.export_into(&reg);
        for c in self.collectors.lock().iter() {
            c(&reg);
        }
        reg.prometheus_text()
    }

    /// Renders the `/health` document (JSON).
    pub fn health_text(&self) -> String {
        self.recorder.pump();
        let v = match self.watchdog.lock().as_ref() {
            Some(wd) => wd.health_json(),
            None => {
                // No watchdog: healthy by definition, but still useful.
                let mut o = Map::new();
                o.insert("verdict".into(), Value::Str("healthy".into()));
                o.insert("runs".into(), Value::Array(Vec::new()));
                o.insert("events".into(), Value::Array(Vec::new()));
                Value::Object(o)
            }
        };
        serde_json::to_string_pretty(&v).expect("infallible")
    }

    /// Renders the `/runs` document (JSON array of run summaries).
    pub fn runs_text(&self) -> String {
        self.recorder.pump();
        let arr: Vec<Value> = self
            .recorder
            .summaries()
            .iter()
            .map(|s| {
                let mut o = Map::new();
                o.insert("run_id".into(), Value::UInt(s.run_id));
                o.insert("graph".into(), Value::Str(s.graph.clone()));
                o.insert("started_ns".into(), Value::UInt(s.started_ns));
                match s.ended_ns {
                    Some(e) => o.insert("ended_ns".into(), Value::UInt(e)),
                    None => o.insert("ended_ns".into(), Value::Null),
                };
                match s.ok {
                    Some(ok) => o.insert("ok".into(), Value::Bool(ok)),
                    None => o.insert("ok".into(), Value::Null),
                };
                if let Some(d) = &s.detail {
                    o.insert("detail".into(), Value::Str(d.clone()));
                }
                o.insert("events".into(), Value::UInt(s.events));
                o.insert("tasks".into(), Value::UInt(s.tasks as u64));
                o.insert("retries".into(), Value::UInt(s.retries));
                o.insert("failures".into(), Value::UInt(s.failures));
                o.insert("failovers".into(), Value::UInt(s.failovers));
                Value::Object(o)
            })
            .collect();
        serde_json::to_string_pretty(&Value::Array(arr)).expect("infallible")
    }

    /// Renders the `/flight` document (full flight-recorder dump).
    pub fn flight_text(&self) -> String {
        self.recorder.pump();
        serde_json::to_string_pretty(&self.recorder.dump_json()).expect("infallible")
    }

    /// Renders the `/tenants` document (JSON): the recorder's per-tenant
    /// latency attribution, plus the wired fleet snapshot when a tenant
    /// source is set.
    pub fn tenants_text(&self) -> String {
        self.recorder.pump();
        let mut v = self.recorder.tenants_json();
        if let Some(src) = self.tenant_source.lock().as_ref() {
            let raw = src();
            let fleet = serde_json::from_str(&raw).unwrap_or(Value::Str(raw));
            if let Value::Object(o) = &mut v {
                o.insert("fleet".into(), fleet);
            }
        }
        serde_json::to_string_pretty(&v).expect("infallible")
    }
}

/// The live endpoint: binds a TCP listener and serves [`HealthHub`]
/// documents until dropped.
pub struct HealthServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HealthServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept thread.
    pub fn bind(addr: &str, hub: Arc<HealthHub>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("hf-health-http".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // Serve inline: introspection traffic is tiny and
                        // a hung client can't wedge us past the timeout.
                        let _ = serve_one(stream, &hub);
                    }
                }
            })?;
        Ok(Self {
            addr: local,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HealthServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

/// Reads one request line, routes it, writes one response.
fn serve_one(mut stream: TcpStream, hub: &HealthHub) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let mut req = Vec::new();
    // Read until the end of the request head (or the buffer bound —
    // GETs with no body don't need more).
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&req);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                hub.metrics_text(),
            ),
            "/health" => ("200 OK", "application/json", hub.health_text()),
            "/runs" => ("200 OK", "application/json", hub.runs_text()),
            "/flight" => ("200 OK", "application/json", hub.flight_text()),
            "/tenants" => ("200 OK", "application/json", hub.tenants_text()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found — try /metrics, /health, /runs, /flight, /tenants\n".to_string(),
            ),
        }
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        let (head, body) = out.split_once("\r\n\r\n").expect("has head");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_and_404() {
        let recorder = FlightRecorder::shared();
        let hub = HealthHub::new(Arc::clone(&recorder));
        hub.add_collector(|reg| {
            reg.set_counter("hf_test_collector_total", "wired", &[], 9);
        });
        let server = HealthServer::bind("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("Content-Length"));
        assert!(body.contains("hf_task_queue_delay_nanos_bucket"));
        assert!(body.contains("hf_test_collector_total 9"));

        let (head, body) = get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"));
        let v = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(v.get("verdict").and_then(|x| x.as_str()), Some("healthy"));

        let (head, body) = get(addr, "/runs");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(serde_json::from_str(&body).is_ok());

        let (head, body) = get(addr, "/flight");
        assert!(head.starts_with("HTTP/1.1 200"));
        let v = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|x| x.as_str()),
            Some("hf-flight-recorder-v1")
        );

        let (head, body) = get(addr, "/tenants");
        assert!(head.starts_with("HTTP/1.1 200"));
        let v = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|x| x.as_str()),
            Some("hf-tenants-v1")
        );
        assert!(v.get("fleet").is_none(), "no tenant source wired yet");
        hub.set_tenant_source(|| "{\"policy\":\"weighted_fair\"}".to_string());
        let (_, body) = get(addr, "/tenants");
        let v = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(
            v.get("fleet")
                .and_then(|f| f.get("policy"))
                .and_then(|p| p.as_str()),
            Some("weighted_fair")
        );

        let (head, body) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
        assert!(body.contains("/tenants"), "{body}");
        drop(server); // clean shutdown joins the accept thread
    }
}
