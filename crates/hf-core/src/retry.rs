//! Retry and device-failover policies for the executor.
//!
//! A [`RetryPolicy`] tells the executor what to do when a task body fails:
//! how many attempts each task kind gets, how long to back off between
//! attempts, and whether a whole-device loss triggers failover (re-placing
//! the lost device's placement groups onto the surviving GPUs) or fails
//! the run.
//!
//! Retries are only attempted for *transient* failures whose effect never
//! happened: injected faults and device allocation exhaustion fire before
//! the operation mutates any state, and a panicking task body is treated
//! as transient as well. Structural errors (missing dependency, cycle,
//! empty task) never retry.

use crate::graph::TaskKind;
use std::time::Duration;

/// What the executor does when a device is lost mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnDeviceLoss {
    /// Re-place the lost device's placement groups onto the surviving
    /// GPUs and replay the unfinished part of the round (the default).
    #[default]
    Failover,
    /// Fail the run with the device-loss error.
    Fail,
}

/// Per-task-kind retry budget, backoff, and device-loss behavior.
///
/// The default policy is one attempt (no retries), zero backoff, failover
/// on device loss with a budget of three failovers per submission.
///
/// ```
/// use hf_core::retry::{OnDeviceLoss, RetryPolicy};
/// use hf_core::TaskKind;
/// use std::time::Duration;
///
/// let policy = RetryPolicy::new(3)
///     .attempts_for(TaskKind::Kernel, 5)
///     .backoff(Duration::from_millis(1))
///     .on_device_loss(OnDeviceLoss::Failover)
///     .max_failovers(2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    default_attempts: u32,
    host: Option<u32>,
    pull: Option<u32>,
    push: Option<u32>,
    kernel: Option<u32>,
    backoff: Duration,
    on_device_loss: OnDeviceLoss,
    max_failovers: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new(1)
    }
}

impl RetryPolicy {
    /// A policy giving every task kind `max_attempts` attempts
    /// (`1` means no retries; `0` is clamped to `1`).
    pub fn new(max_attempts: u32) -> Self {
        Self {
            default_attempts: max_attempts.max(1),
            host: None,
            pull: None,
            push: None,
            kernel: None,
            backoff: Duration::ZERO,
            on_device_loss: OnDeviceLoss::default(),
            max_failovers: 3,
        }
    }

    /// Overrides the attempt budget for one task kind.
    pub fn attempts_for(mut self, kind: TaskKind, max_attempts: u32) -> Self {
        let slot = match kind {
            TaskKind::Host | TaskKind::Placeholder => &mut self.host,
            TaskKind::Pull => &mut self.pull,
            TaskKind::Push => &mut self.push,
            TaskKind::Kernel => &mut self.kernel,
        };
        *slot = Some(max_attempts.max(1));
        self
    }

    /// Base delay between attempts; attempt `n` waits `n * backoff`
    /// (linear, capped at one second). Served inline on the retrying
    /// thread, so keep it small.
    pub fn backoff(mut self, d: Duration) -> Self {
        self.backoff = d;
        self
    }

    /// What a whole-device loss does (default: [`OnDeviceLoss::Failover`]).
    pub fn on_device_loss(mut self, behavior: OnDeviceLoss) -> Self {
        self.on_device_loss = behavior;
        self
    }

    /// Failovers allowed per submission before the run fails with the
    /// loss error (default 3).
    pub fn max_failovers(mut self, n: u32) -> Self {
        self.max_failovers = n;
        self
    }

    /// Attempt budget for `kind`.
    pub fn attempts(&self, kind: TaskKind) -> u32 {
        let o = match kind {
            TaskKind::Host | TaskKind::Placeholder => self.host,
            TaskKind::Pull => self.pull,
            TaskKind::Push => self.push,
            TaskKind::Kernel => self.kernel,
        };
        o.unwrap_or(self.default_attempts)
    }

    /// Delay before retrying after `attempt` failed attempts.
    pub(crate) fn backoff_for(&self, attempt: u32) -> Duration {
        (self.backoff * attempt).min(Duration::from_secs(1))
    }

    pub(crate) fn loss_behavior(&self) -> OnDeviceLoss {
        self.on_device_loss
    }

    pub(crate) fn failover_budget(&self) -> u32 {
        self.max_failovers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_attempt_failover() {
        let p = RetryPolicy::default();
        assert_eq!(p.attempts(TaskKind::Kernel), 1);
        assert_eq!(p.attempts(TaskKind::Host), 1);
        assert_eq!(p.loss_behavior(), OnDeviceLoss::Failover);
        assert_eq!(p.failover_budget(), 3);
        assert_eq!(p.backoff_for(5), Duration::ZERO);
    }

    #[test]
    fn per_kind_overrides_win() {
        let p = RetryPolicy::new(2).attempts_for(TaskKind::Kernel, 7);
        assert_eq!(p.attempts(TaskKind::Kernel), 7);
        assert_eq!(p.attempts(TaskKind::Pull), 2);
    }

    #[test]
    fn backoff_is_linear_and_capped() {
        let p = RetryPolicy::new(3).backoff(Duration::from_millis(400));
        assert_eq!(p.backoff_for(1), Duration::from_millis(400));
        assert_eq!(p.backoff_for(2), Duration::from_millis(800));
        assert_eq!(p.backoff_for(9), Duration::from_secs(1));
    }

    #[test]
    fn zero_attempts_clamps_to_one() {
        let p = RetryPolicy::new(0);
        assert_eq!(p.attempts(TaskKind::Push), 1);
    }
}
