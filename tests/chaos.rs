//! Chaos stress test: drive many seeded fault plans through real graphs
//! and assert every run ends in a correct result or a structured error —
//! never a hang, never silent corruption.
//!
//! The base seed comes from `HF_CHAOS_SEED` (decimal) when set, so CI can
//! run one fixed and one time-derived pass; every assertion message
//! carries the seed needed to reproduce the failure locally.

use heteroflow::prelude::*;
use std::time::Duration;

const DEFAULT_SEED: u64 = 0x5eed_cafe_f00d_0001;
const PLANS: usize = 100;
const DEADLINE: Duration = Duration::from_secs(30);

fn base_seed() -> u64 {
    std::env::var("HF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// splitmix64: cheap, well-mixed stream for deriving per-plan randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Build a randomized fault plan from one seed: per-site failure
/// probabilities, an optional fault budget, and an occasional whole-device
/// loss.
fn plan_for(seed: u64) -> FaultPlan {
    let mut rng = Rng(seed);
    let mut plan = FaultPlan::seeded(seed);
    for site in [
        FaultSite::Alloc,
        FaultSite::H2d,
        FaultSite::D2h,
        FaultSite::Kernel,
    ] {
        // 0.0 ..= 0.24 per site; often 0 so plenty of runs stay clean.
        let p = (rng.next() % 100) as f64 / 400.0;
        if rng.next().is_multiple_of(2) {
            plan = plan.fail(site, p);
        }
    }
    if !rng.next().is_multiple_of(3) {
        // Bound the storm so most faulty runs can still retry to success.
        plan = plan.max_faults(1 + rng.next() % 6);
    }
    if rng.next().is_multiple_of(4) {
        let dev = (rng.next() % 2) as u32;
        let after = rng.next() % 8;
        plan = plan.lose_device(dev, after);
    }
    plan
}

fn chaos_executor(plan: FaultPlan) -> Executor {
    let ex = Executor::builder(2, 2)
        .retry_policy(RetryPolicy::new(3))
        .build();
    ex.gpu_runtime().set_fault_plan(Some(plan));
    ex
}

/// Pre-filled saxpy (Listing 1 without the host fill tasks): y += a*x.
fn run_saxpy(ex: &Executor, seed: u64) -> bool {
    const N: usize = 256;
    let x: HostVec<i32> = HostVec::from_vec(vec![1; N]);
    let y: HostVec<i32> = HostVec::from_vec(vec![2; N]);
    let g = Heteroflow::new("chaos_saxpy");
    let pull_x = g.pull("pull_x", &x);
    let pull_y = g.pull("pull_y", &y);
    let kernel = g.kernel("saxpy", &[&pull_x, &pull_y], |cfg, args| {
        let (xs, ys) = args.slice2_mut::<i32, i32>(0, 1).unwrap();
        for i in cfg.threads() {
            if i < ys.len() {
                ys[i] += 2 * xs[i];
            }
        }
    });
    kernel.cover(N, 64);
    let push_y = g.push("push_y", &pull_y, &y);
    kernel.succeed_all(&[&pull_x, &pull_y]);
    kernel.precede(&push_y);

    let fut = ex.run(&g);
    match fut.wait_timeout(DEADLINE) {
        None => panic!("saxpy hung under fault plan (seed {seed})"),
        Some(Ok(())) => {
            assert!(
                y.read().iter().all(|&v| v == 4),
                "saxpy reported success with wrong data (seed {seed}): {:?}...",
                &y.read()[..8]
            );
            true
        }
        Some(Err(e)) => {
            // Structured failure is acceptable; silent corruption is not.
            assert!(
                !matches!(e, HfError::Cancelled),
                "uncancelled saxpy ended Cancelled (seed {seed}): {e}"
            );
            false
        }
    }
}

/// Miniature wavefront (examples/wavefront.rs): a grid of tiles where each
/// kernel reads its own pull plus the upper and left neighbors' pulls, with
/// a CPU reference recurrence for validation.
fn run_wavefront(ex: &Executor, seed: u64) -> bool {
    const GRID: usize = 3;
    const TILE: usize = 8;
    let tiles: Vec<HostVec<f32>> = (0..GRID * GRID)
        .map(|idx| HostVec::from_vec(vec![(idx % 7) as f32; TILE * TILE]))
        .collect();

    let g = Heteroflow::new("chaos_wavefront");
    let pulls: Vec<PullTask> = (0..GRID * GRID)
        .map(|idx| g.pull(&format!("pull_{idx}"), &tiles[idx]))
        .collect();
    let mut kernels: Vec<KernelTask> = Vec::with_capacity(GRID * GRID);
    for i in 0..GRID {
        for j in 0..GRID {
            let mut sources: Vec<&PullTask> = vec![&pulls[i * GRID + j]];
            if i > 0 {
                sources.push(&pulls[(i - 1) * GRID + j]);
            }
            if j > 0 {
                sources.push(&pulls[i * GRID + j - 1]);
            }
            let n_src = sources.len();
            let k = g.kernel(&format!("block_{i}_{j}"), &sources, move |cfg, args| {
                let mut incoming = 0.0f32;
                for s in 1..n_src {
                    let nb = args.slice::<f32>(s).unwrap();
                    incoming += nb.iter().sum::<f32>() / nb.len() as f32;
                }
                let own = args.slice_mut::<f32>(0).unwrap();
                for t in cfg.threads() {
                    if t < own.len() {
                        own[t] = 0.5 * own[t] + incoming;
                    }
                }
            });
            k.cover(TILE * TILE, 64);
            k.succeed(&pulls[i * GRID + j]);
            if i > 0 {
                k.succeed(&kernels[(i - 1) * GRID + j]);
            }
            if j > 0 {
                k.succeed(&kernels[i * GRID + j - 1]);
            }
            kernels.push(k);
        }
    }
    let corner = GRID * GRID - 1;
    let push = g.push("push_corner", &pulls[corner], &tiles[corner]);
    push.succeed(&kernels[corner]);

    // CPU reference for the corner tile's uniform value.
    let mut reference = vec![vec![0.0f32; GRID]; GRID];
    for i in 0..GRID {
        for j in 0..GRID {
            let idx = i * GRID + j;
            let up = if i > 0 { reference[i - 1][j] } else { 0.0 };
            let left = if j > 0 { reference[i][j - 1] } else { 0.0 };
            reference[i][j] = 0.5 * (idx % 7) as f32 + up + left;
        }
    }
    let expect = reference[GRID - 1][GRID - 1];

    let fut = ex.run(&g);
    match fut.wait_timeout(DEADLINE) {
        None => panic!("wavefront hung under fault plan (seed {seed})"),
        Some(Ok(())) => {
            let got = tiles[corner].read()[0];
            assert!(
                (got - expect).abs() < 1e-3,
                "wavefront reported success with wrong data (seed {seed}): got {got}, want {expect}"
            );
            true
        }
        Some(Err(e)) => {
            assert!(
                !matches!(e, HfError::Cancelled),
                "uncancelled wavefront ended Cancelled (seed {seed}): {e}"
            );
            false
        }
    }
}

/// 100 randomized fault plans over both workloads: every run must settle
/// within the deadline with either a correct result or a structured error.
#[test]
fn chaos_fault_plans_never_hang_or_corrupt() {
    let base = base_seed();
    eprintln!("chaos base seed: {base} (set HF_CHAOS_SEED={base} to reproduce)");
    let mut rng = Rng(base);
    let (mut ok, mut failed) = (0u32, 0u32);
    let (mut faults, mut retries, mut losses) = (0u64, 0u64, 0u64);
    for iter in 0..PLANS {
        let seed = rng.next();
        eprintln!("iteration {iter}: plan seed {seed}");
        for (workload, plan_seed) in [("saxpy", seed), ("wavefront", seed ^ 0xabcd)] {
            let ex = chaos_executor(plan_for(plan_seed));
            let succeeded = match workload {
                "saxpy" => run_saxpy(&ex, seed),
                _ => run_wavefront(&ex, seed),
            };
            if succeeded {
                ok += 1;
            } else {
                failed += 1;
            }
            let snap = ex.stats().snapshot();
            faults += snap.faults_injected;
            retries += snap.retries;
            losses += snap.devices_lost;
        }
    }
    eprintln!(
        "chaos summary (base seed {base}): {ok} ok, {failed} structured failures, \
         {faults} faults injected, {retries} retries, {losses} device losses"
    );
    // The campaign must actually exercise the fault paths: some runs keep
    // succeeding, and faults/retries fire somewhere across 200 runs.
    assert!(ok > 0, "no run succeeded under chaos (base seed {base})");
    assert!(
        faults > 0 || losses > 0,
        "no fault ever fired across {PLANS} plans (base seed {base})"
    );
}

/// Acceptance criterion: a run that loses a device mid-flight completes on
/// the survivors, and the loss is visible in the stats snapshot.
#[test]
fn device_loss_completes_on_survivors() {
    let seed = base_seed();
    let ex = Executor::builder(2, 2)
        .retry_policy(RetryPolicy::new(3))
        .build();
    ex.gpu_runtime()
        .set_fault_plan(Some(FaultPlan::seeded(seed).lose_device(1, 1)));

    // Two independent lanes => two placement groups => both devices used,
    // so device 1 is guaranteed to host live work when it dies.
    let bufs: Vec<HostVec<i32>> = (0..2)
        .map(|_| HostVec::from_vec(vec![3; 64]))
        .collect();
    let g = Heteroflow::new("lose_one");
    for (i, b) in bufs.iter().enumerate() {
        let p = g.pull(&format!("pull_{i}"), b);
        let k = g.kernel(&format!("double_{i}"), &[&p], |cfg, args| {
            let xs = args.slice_mut::<i32>(0).unwrap();
            for t in cfg.threads() {
                if t < xs.len() {
                    xs[t] *= 2;
                }
            }
        });
        k.block_x(64);
        let s = g.push(&format!("push_{i}"), &p, b);
        p.precede(&k);
        k.precede(&s);
    }

    let res = ex
        .run(&g)
        .wait_timeout(DEADLINE)
        .unwrap_or_else(|| panic!("device-loss run hung (seed {seed})"));
    assert_eq!(res, Ok(()), "device-loss run failed (seed {seed})");
    for b in &bufs {
        assert!(
            b.read().iter().all(|&v| v == 6),
            "device-loss run corrupted data (seed {seed})"
        );
    }
    let snap = ex.stats().snapshot();
    assert!(
        snap.devices_lost >= 1,
        "expected devices_lost >= 1 in stats (seed {seed}), got {}",
        snap.devices_lost
    );
}

/// Chaos with two tenants sharing a fleet: seeded fault plans fire under
/// concurrent multi-tenant submission, and every future still settles
/// within the deadline as success-with-correct-data or a structured
/// error — admission bookkeeping never wedges or leaks an in-flight slot.
#[test]
fn fleet_chaos_two_tenants_never_hang() {
    let base = base_seed() ^ 0xf1ee;
    let mut rng = Rng(base);
    let (mut ok, mut failed) = (0u32, 0u32);
    for iter in 0..10 {
        let seed = rng.next();
        eprintln!("fleet chaos iteration {iter}: plan seed {seed}");
        let ex = chaos_executor(plan_for(seed));
        let fleet = Fleet::new(
            ex,
            FleetConfig {
                max_inflight: 2,
                ..FleetConfig::default()
            },
        );
        let alpha = fleet.register("alpha", TenantConfig { weight: 4, ..TenantConfig::default() });
        let beta = fleet.register("beta", TenantConfig::default());

        const N: usize = 128;
        let mut lanes = Vec::new();
        for (tenant, runs) in [(&alpha, 3usize), (&beta, 2usize)] {
            for r in 0..runs {
                let x: HostVec<i32> = HostVec::from_vec(vec![1; N]);
                let g = Heteroflow::new(&format!("chaos_{}_{r}", tenant.as_str()));
                let p = g.pull("pull", &x);
                let k = g.kernel("double", &[&p], |cfg, args| {
                    let xs = args.slice_mut::<i32>(0).unwrap();
                    for t in cfg.threads() {
                        if t < xs.len() {
                            xs[t] *= 2;
                        }
                    }
                });
                k.cover(N, 64);
                let s = g.push("push", &p, &x);
                p.precede(&k);
                k.precede(&s);
                let fut = fleet.submit(tenant, &g).expect("no quotas configured");
                lanes.push((x, fut));
            }
        }
        for (x, fut) in lanes {
            match fut.wait_timeout(DEADLINE) {
                None => panic!("fleet run hung under fault plan (seed {seed})"),
                Some(Ok(())) => {
                    assert!(
                        x.read().iter().all(|&v| v == 2),
                        "fleet run reported success with wrong data (seed {seed})"
                    );
                    ok += 1;
                }
                Some(Err(e)) => {
                    assert!(
                        !matches!(e, HfError::Cancelled),
                        "uncancelled fleet run ended Cancelled (seed {seed}): {e}"
                    );
                    failed += 1;
                }
            }
        }
        fleet.wait_idle();
        let snap = fleet.snapshot();
        assert_eq!(snap.inflight, 0, "slot leak after drain (seed {seed})");
        assert_eq!(snap.queued, 0, "queue leak after drain (seed {seed})");
        let settled: u64 = snap
            .tenants
            .iter()
            .map(|t| t.completed + t.failed + t.cancelled)
            .sum();
        assert_eq!(settled, 5, "every submission settles exactly once (seed {seed})");
    }
    eprintln!("fleet chaos summary (base seed {base}): {ok} ok, {failed} structured failures");
    assert!(ok > 0, "no fleet run succeeded under chaos (base seed {base})");
}

/// H2D faults aimed at the transfer-elision path: a graph whose pull has
/// valid residency is mutated and re-run under an H2D fault budget. The
/// retried copy must deliver the *new* host bytes — a bug that left stale
/// residency valid across the fault would surface as the old values.
/// Exercises both the single-op and the chunked (pipelined) copy paths.
#[test]
fn h2d_faults_never_serve_stale_residency() {
    const N: usize = 256;
    let seed = base_seed() ^ 0xe11d;
    for threshold in [usize::MAX, 128] {
        let ex = Executor::builder(2, 1)
            .retry_policy(RetryPolicy::new(4))
            .copy_chunk_threshold(threshold)
            .build();
        let data: HostVec<i32> = HostVec::from_vec(vec![0; N]);
        let g = Heteroflow::new("elide_chaos");
        let p = g.pull("pull", &data);
        let k = g.kernel("incr", &[&p], |cfg, args| {
            let v = args.slice_mut::<i32>(0).unwrap();
            for t in cfg.threads() {
                if t < v.len() {
                    v[t] += 1;
                }
            }
        });
        k.cover(N, 64);
        let s = g.push("push", &p, &data);
        p.precede(&k);
        k.precede(&s);

        // Clean run establishes residency (push revalidates it).
        ex.run(&g)
            .wait_timeout(DEADLINE)
            .unwrap_or_else(|| panic!("clean run hung (seed {seed})"))
            .expect("clean run");
        assert!(data.read().iter().all(|&v| v == 1));

        // Every H2D draw faults until the budget runs out.
        ex.gpu_runtime().set_fault_plan(Some(
            FaultPlan::seeded(seed).fail(FaultSite::H2d, 1.0).max_faults(2),
        ));

        // Unchanged rerun: the copy elides, drawing no fault, so the run
        // succeeds without touching the budget-limited fault stream.
        ex.run(&g)
            .wait_timeout(DEADLINE)
            .unwrap_or_else(|| panic!("elided rerun hung (seed {seed})"))
            .unwrap_or_else(|e| panic!("elided rerun failed (seed {seed}): {e}"));
        assert!(
            data.read().iter().all(|&v| v == 2),
            "elided rerun corrupted data (seed {seed}, threshold {threshold})"
        );
        assert!(ex.stats().snapshot().transfers_elided >= 1);

        // Mutated rerun: the copy must really happen; the first attempts
        // fault and the retry re-copies. Stale residency would read 3.
        data.write().iter_mut().for_each(|v| *v = 10);
        ex.run(&g)
            .wait_timeout(DEADLINE)
            .unwrap_or_else(|| panic!("faulted rerun hung (seed {seed})"))
            .unwrap_or_else(|e| panic!("faulted rerun failed (seed {seed}): {e}"));
        assert!(
            data.read().iter().all(|&v| v == 11),
            "stale bytes served across H2D fault (seed {seed}, threshold \
             {threshold}): {:?}...",
            &data.read()[..4]
        );
    }
}
