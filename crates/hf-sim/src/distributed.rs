//! Distributed execution exploration — the paper's future work.
//!
//! "Future work will focus on distributing our scheduler based on [46]
//! (DtCraft)" (§VI). This module explores that direction in the
//! discrete-event setting: a [`Cluster`] of CPU-GPU nodes executes a
//! partitioned task graph; dependency edges that cross the partition pay
//! a network transfer (latency + bytes/bandwidth). The partitioner and
//! the cluster simulator let the repository quantify when distribution
//! pays off — the question a real distributed Heteroflow would face.

use crate::result::SimResult;
use hf_core::{GraphInfo, TaskKind};
use hf_gpu::{CostModel, SimDuration};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One machine in the cluster.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// CPU workers.
    pub cores: usize,
    /// GPU devices.
    pub gpus: u32,
}

/// A cluster of nodes joined by a uniform network.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Member machines.
    pub nodes: Vec<NodeSpec>,
    /// Network bandwidth in bytes/second (10 GbE ≈ 1.25e9).
    pub net_bytes_per_sec: f64,
    /// Per-message latency.
    pub net_latency: SimDuration,
    /// Device-op cost model (shared by all nodes).
    pub cost: CostModel,
    /// Bytes assumed for a cross-node message when the producing task
    /// declares no payload (host-task results).
    pub default_message_bytes: usize,
}

impl Cluster {
    /// A homogeneous cluster of `n` nodes.
    pub fn homogeneous(n: usize, cores: usize, gpus: u32) -> Self {
        Self {
            nodes: vec![NodeSpec { cores, gpus }; n.max(1)],
            net_bytes_per_sec: 1.25e9,
            net_latency: SimDuration::from_micros(50),
            cost: CostModel::default(),
            default_message_bytes: 4096,
        }
    }
}

/// Result of a cluster simulation.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterResult {
    /// End-to-end makespan in seconds.
    pub makespan_secs: f64,
    /// Cross-node messages sent.
    pub messages: usize,
    /// Bytes moved over the network.
    pub net_bytes: u64,
    /// Busy seconds per node (all workers summed).
    pub node_busy_secs: Vec<f64>,
    /// The underlying per-node utilization-style summary.
    pub tasks: usize,
}

/// Partitions the graph across `node_count` nodes: tasks are taken in
/// topological order and packed into contiguous blocks of roughly equal
/// modeled work — cheap, deterministic, and edge-friendly for layered
/// graphs (successive layers mostly co-locate).
pub fn partition_by_work(
    info: &GraphInfo,
    node_count: usize,
    cost: &CostModel,
    host_cost: impl Fn(usize) -> SimDuration,
) -> Vec<usize> {
    let n = info.nodes.len();
    let node_count = node_count.max(1);
    let work_of = |id: usize| -> f64 {
        let node = &info.nodes[id];
        match node.kind {
            TaskKind::Host => host_cost(id).as_secs_f64(),
            TaskKind::Pull => cost.h2d(node.bytes).as_secs_f64(),
            TaskKind::Push => cost.d2h(node.bytes).as_secs_f64(),
            TaskKind::Kernel => cost.kernel(node.effective_work_units()).as_secs_f64(),
            TaskKind::Placeholder => 0.0,
        }
    };
    // Topological order via Kahn.
    let mut indeg: Vec<usize> = info.nodes.iter().map(|x| x.num_deps).collect();
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut topo = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        topo.push(u);
        for &v in &info.nodes[u].successors {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    let total: f64 = (0..n).map(work_of).sum();
    let per_node = (total / node_count as f64).max(f64::MIN_POSITIVE);

    let mut assignment = vec![0usize; n];
    let mut node = 0usize;
    let mut acc = 0.0f64;
    for &t in &topo {
        let w = work_of(t);
        // Advance to the next node *before* overflowing the quota (keeps
        // equal-work graphs exactly balanced).
        if acc + w > per_node * 1.0001 && acc > 0.0 && node + 1 < node_count {
            node += 1;
            acc = 0.0;
        }
        assignment[t] = node;
        acc += w;
    }
    assignment
}

/// Affinity partitioner: a task with predecessors joins the node of its
/// heaviest predecessor (pipelines stay together, minimizing cut edges);
/// source tasks are spread by the work-balance quota. Much better than
/// [`partition_by_work`] for graphs of parallel pipelines (the Fig 5
/// multi-view shape).
pub fn partition_by_affinity(
    info: &GraphInfo,
    node_count: usize,
    cost: &CostModel,
    host_cost: impl Fn(usize) -> SimDuration,
) -> Vec<usize> {
    let n = info.nodes.len();
    let node_count = node_count.max(1);
    let work_of = |id: usize| -> f64 {
        let node = &info.nodes[id];
        match node.kind {
            TaskKind::Host => host_cost(id).as_secs_f64(),
            TaskKind::Pull => cost.h2d(node.bytes).as_secs_f64(),
            TaskKind::Push => cost.d2h(node.bytes).as_secs_f64(),
            TaskKind::Kernel => cost.kernel(node.effective_work_units()).as_secs_f64(),
            TaskKind::Placeholder => 0.0,
        }
    };

    // Predecessor lists (info stores successors).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, node) in info.nodes.iter().enumerate() {
        for &v in &node.successors {
            preds[v].push(u);
        }
    }

    let mut indeg: Vec<usize> = info.nodes.iter().map(|x| x.num_deps).collect();
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut assignment = vec![usize::MAX; n];
    let mut node_load = vec![0.0f64; node_count];

    while let Some(u) = queue.pop_front() {
        let target = if preds[u].is_empty() {
            // Source: least-loaded node.
            node_load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
                .map(|(i, _)| i)
                .expect("node_count > 0")
        } else {
            // Inherit the heaviest predecessor's node.
            preds[u]
                .iter()
                .max_by(|&&a, &&b| {
                    work_of(a)
                        .partial_cmp(&work_of(b))
                        .expect("finite work")
                })
                .map(|&p| assignment[p])
                .expect("non-empty preds")
        };
        assignment[u] = target;
        node_load[target] += work_of(u);
        for &v in &info.nodes[u].successors {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    assignment
}

/// Simulates the partitioned graph on the cluster. Within a node the
/// model matches [`crate::simulate`] (workers + exclusive devices,
/// asynchronous GPU dispatch folded into the op span); across nodes,
/// a dependency edge adds `latency + bytes/bandwidth` after the producer
/// finishes.
pub fn simulate_cluster(
    info: &GraphInfo,
    cluster: &Cluster,
    assignment: &[usize],
    host_cost: impl Fn(usize) -> SimDuration,
) -> ClusterResult {
    let n = info.nodes.len();
    assert_eq!(assignment.len(), n, "one node per task");
    for &a in assignment {
        assert!(a < cluster.nodes.len(), "assignment to unknown node {a}");
    }

    let dur_of = |id: usize| -> u64 {
        let node = &info.nodes[id];
        match node.kind {
            TaskKind::Host => host_cost(id).as_nanos(),
            TaskKind::Pull => cluster.cost.h2d(node.bytes).as_nanos(),
            TaskKind::Push => cluster.cost.d2h(node.bytes).as_nanos(),
            TaskKind::Kernel => cluster
                .cost
                .kernel(node.effective_work_units())
                .as_nanos(),
            TaskKind::Placeholder => 0,
        }
    };
    let is_gpu = |id: usize| {
        matches!(
            info.nodes[id].kind,
            TaskKind::Pull | TaskKind::Push | TaskKind::Kernel
        )
    };
    let message_ns = |id: usize| -> u64 {
        let bytes = if info.nodes[id].bytes > 0 {
            info.nodes[id].bytes
        } else {
            cluster.default_message_bytes
        };
        cluster.net_latency.as_nanos()
            + SimDuration::from_secs_f64(bytes as f64 / cluster.net_bytes_per_sec).as_nanos()
    };

    // Per-node worker pools and GPU slots.
    let mut workers: Vec<BinaryHeap<Reverse<u64>>> = cluster
        .nodes
        .iter()
        .map(|s| (0..s.cores.max(1)).map(|_| Reverse(0u64)).collect())
        .collect();
    let mut gpu_free: Vec<Vec<u64>> = cluster
        .nodes
        .iter()
        .map(|s| vec![0u64; s.gpus as usize])
        .collect();
    let mut node_busy = vec![0u64; cluster.nodes.len()];

    let mut indeg: Vec<usize> = info.nodes.iter().map(|x| x.num_deps).collect();
    let mut ready: VecDeque<(usize, u64)> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| (i, 0u64))
        .collect();
    let mut completions: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut makespan = 0u64;
    let mut executed = 0usize;
    let mut messages = 0usize;
    let mut net_bytes = 0u64;

    loop {
        while let Some((id, ready_at)) = ready.pop_front() {
            let node = assignment[id];
            let dur = dur_of(id);
            let Reverse(wt) = workers[node].pop().expect("non-empty pool");
            let start = ready_at.max(wt);
            let finish = if is_gpu(id) && !gpu_free[node].is_empty() {
                // Occupy the node's earliest-free device; the worker only
                // pays a dispatch overhead.
                let (gi, &gt) = gpu_free[node]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .expect("node has GPUs");
                let op_start = start.max(gt);
                let fin = op_start + dur;
                gpu_free[node][gi] = fin;
                workers[node].push(Reverse(start + 5_000));
                node_busy[node] += dur;
                fin
            } else {
                // Host task (or GPU task on a GPU-less node: runs on CPU
                // at the same modeled cost — a degraded but legal config).
                let fin = start + dur;
                workers[node].push(Reverse(fin));
                node_busy[node] += dur;
                fin
            };
            completions.push(Reverse((finish, id)));
            makespan = makespan.max(finish);
            executed += 1;
        }
        match completions.pop() {
            None => break,
            Some(Reverse((t, id))) => {
                for &s in &info.nodes[id].successors {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        // Cross-node edges pay the network.
                        let mut avail = t;
                        if assignment[s] != assignment[id] {
                            let m = message_ns(id);
                            avail += m;
                            messages += 1;
                            net_bytes += if info.nodes[id].bytes > 0 {
                                info.nodes[id].bytes as u64
                            } else {
                                cluster.default_message_bytes as u64
                            };
                        }
                        ready.push_back((s, avail));
                    }
                }
            }
        }
    }
    debug_assert_eq!(executed, n);

    ClusterResult {
        makespan_secs: SimDuration::from_nanos(makespan).as_secs_f64(),
        messages,
        net_bytes,
        node_busy_secs: node_busy
            .iter()
            .map(|&b| SimDuration::from_nanos(b).as_secs_f64())
            .collect(),
        tasks: executed,
    }
}

/// Convenience: the single-node baseline for speedup comparisons.
pub fn single_node_baseline(
    info: &GraphInfo,
    cores: usize,
    gpus: u32,
    cost: CostModel,
    host_cost: impl Fn(usize) -> SimDuration,
) -> SimResult {
    let m = crate::machine::Machine::new(cores, gpus).with_cost(cost);
    crate::des::simulate(
        info,
        &m,
        hf_core::placement::PlacementPolicy::BalancedLoad,
        host_cost,
    )
    .expect("baseline simulates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_core::Heteroflow;

    fn fan(n: usize) -> GraphInfo {
        let g = Heteroflow::new("fan");
        for i in 0..n {
            g.host(&format!("t{i}"), || {});
        }
        g.info().expect("acyclic")
    }

    fn chain(n: usize) -> GraphInfo {
        let g = Heteroflow::new("chain");
        let mut prev = None;
        for i in 0..n {
            let t = g.host(&format!("t{i}"), || {});
            if let Some(p) = &prev {
                t.succeed(p);
            }
            prev = Some(t);
        }
        g.info().expect("acyclic")
    }

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn partition_balances_work() {
        let info = fan(40);
        let asg = partition_by_work(&info, 4, &CostModel::default(), |_| MS);
        let mut counts = [0usize; 4];
        for &a in &asg {
            counts[a] += 1;
        }
        for &c in &counts {
            assert!((8..=12).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn independent_work_scales_with_nodes() {
        let info = fan(64);
        let one = Cluster::homogeneous(1, 4, 0);
        let four = Cluster::homogeneous(4, 4, 0);
        let a1 = partition_by_work(&info, 1, &one.cost, |_| MS);
        let a4 = partition_by_work(&info, 4, &four.cost, |_| MS);
        let r1 = simulate_cluster(&info, &one, &a1, |_| MS);
        let r4 = simulate_cluster(&info, &four, &a4, |_| MS);
        let speedup = r1.makespan_secs / r4.makespan_secs;
        assert!(speedup > 3.0, "got {speedup:.2}x");
        assert_eq!(r4.messages, 0, "independent tasks need no messages");
    }

    #[test]
    fn chains_pay_the_network_and_do_not_benefit() {
        let info = chain(32);
        let one = Cluster::homogeneous(1, 4, 0);
        let four = Cluster::homogeneous(4, 4, 0);
        let a1 = partition_by_work(&info, 1, &one.cost, |_| MS);
        let a4 = partition_by_work(&info, 4, &four.cost, |_| MS);
        let r1 = simulate_cluster(&info, &one, &a1, |_| MS);
        let r4 = simulate_cluster(&info, &four, &a4, |_| MS);
        // A pure chain: distribution can only add network time.
        assert!(r4.makespan_secs >= r1.makespan_secs);
        assert_eq!(r4.messages, 3, "one message per partition boundary");
        assert!(r4.net_bytes > 0);
    }

    #[test]
    fn cluster_matches_single_node_model_for_one_node() {
        let info = fan(24);
        let cluster = Cluster::homogeneous(1, 3, 0);
        let asg = vec![0usize; 24];
        let r = simulate_cluster(&info, &cluster, &asg, |_| MS);
        let baseline = single_node_baseline(&info, 3, 0, cluster.cost, |_| MS);
        assert!(
            (r.makespan_secs - baseline.makespan_secs).abs() < 1e-9,
            "{} vs {}",
            r.makespan_secs,
            baseline.makespan_secs
        );
    }

    #[test]
    fn affinity_keeps_pipelines_together() {
        // 8 independent 4-task pipelines: affinity partitioning across 4
        // nodes must produce zero cross-node messages (each pipeline
        // whole on one node), unlike the block partitioner.
        let g = Heteroflow::new("pipes");
        for i in 0..8 {
            let a = g.host(&format!("a{i}"), || {});
            let b = g.host(&format!("b{i}"), || {});
            let c = g.host(&format!("c{i}"), || {});
            let d = g.host(&format!("d{i}"), || {});
            a.precede(&b);
            b.precede(&c);
            c.precede(&d);
        }
        let info = g.info().expect("acyclic");
        let cluster = Cluster::homogeneous(4, 2, 0);
        let asg = partition_by_affinity(&info, 4, &cluster.cost, |_| MS);
        let r = simulate_cluster(&info, &cluster, &asg, |_| MS);
        assert_eq!(r.messages, 0, "affinity cut a pipeline");
        // Load is spread: every node got two pipelines.
        let mut per_node = [0usize; 4];
        for &a in &asg {
            per_node[a] += 1;
        }
        assert_eq!(per_node, [8, 8, 8, 8]);
    }

    #[test]
    fn gpu_tasks_use_node_devices() {
        use hf_core::data::HostVec;
        let g = Heteroflow::new("gpu");
        let d: HostVec<u8> = HostVec::from_vec(vec![0; 1 << 20]);
        for i in 0..4 {
            let p = g.pull(&format!("p{i}"), &d);
            let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
            k.cover(1024, 128).work_units(1e6);
            p.precede(&k);
        }
        let info = g.info().expect("acyclic");
        let cluster = Cluster::homogeneous(2, 2, 1);
        let asg = partition_by_work(&info, 2, &cluster.cost, |_| MS);
        let r = simulate_cluster(&info, &cluster, &asg, |_| MS);
        assert_eq!(r.tasks, 8);
        assert!(r.makespan_secs > 0.0);
        // Both nodes did GPU work.
        assert!(r.node_busy_secs.iter().all(|&b| b > 0.0));
    }
}
