//! Chrome trace-event / Perfetto export.
//!
//! Produces the same `"X"` complete-event stream as
//! [`hf_core::TraceCollector::to_chrome_trace`], plus the `process_name` /
//! `thread_name` metadata events that make the Perfetto UI readable: CPU
//! workers appear as threads of a process named `cpu`, each device as its
//! own `gpu<d>` process with one thread per stream. The same exporter
//! serves measured spans (from the trace collector) and modeled spans
//! (from the `hf-sim` discrete-event model, via [`spans_from_sim`]) so
//! real and simulated schedules can be diffed in one UI.

use hf_core::observer::chrome_trace_event;
use hf_core::{GraphInfo, SpanCat, TraceSpan, Track};
use hf_sim::SimSpan;
use std::collections::BTreeSet;

/// Renders spans as a chrome trace JSON array with naming metadata.
pub fn chrome_trace(spans: &[TraceSpan]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let mut emit = |ev: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&ev);
    };

    // Naming metadata for every (pid, tid) present.
    let mut pids: BTreeSet<u64> = BTreeSet::new();
    let mut tids: BTreeSet<(u64, u64, bool)> = BTreeSet::new();
    for s in spans {
        let (pid, tid, is_dev) = match s.track {
            Track::Worker(w) => (0u64, w as u64, false),
            Track::Device(d) => (1 + d as u64, s.stream.unwrap_or(0) as u64, true),
        };
        pids.insert(pid);
        tids.insert((pid, tid, is_dev));
    }
    for pid in &pids {
        let name = if *pid == 0 {
            "cpu".to_string()
        } else {
            format!("gpu{}", pid - 1)
        };
        emit(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
        );
    }
    for (pid, tid, is_dev) in &tids {
        let name = if *is_dev {
            format!("stream {tid}")
        } else {
            format!("worker {tid}")
        };
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
        );
    }

    for s in spans {
        let mut ev = String::new();
        chrome_trace_event(&mut ev, s);
        emit(ev, &mut out);
    }
    out.push(']');
    out
}

/// Converts a simulated schedule into trace spans on the same track
/// layout as measured ones: GPU ops on device tracks, host tasks (and, in
/// dedicated mode, GPU ops without a worker) on worker tracks. Task kinds
/// come from `info` (simulated spans carry the node id).
pub fn spans_from_sim(info: &GraphInfo, sim: &[SimSpan]) -> Vec<TraceSpan> {
    sim.iter()
        .map(|s| {
            let track = match (s.device, s.worker) {
                (Some(d), _) => Track::Device(d),
                (None, Some(w)) => Track::Worker(w),
                (None, None) => Track::Worker(0),
            };
            TraceSpan {
                track,
                name: s.name.clone(),
                cat: SpanCat::Task,
                kind: info.nodes.get(s.node).map(|n| n.kind).unwrap_or(
                    hf_core::TaskKind::Placeholder,
                ),
                device: s.device,
                stream: None,
                start_us: s.start_ns / 1_000,
                dur_us: (s.finish_ns - s.start_ns) / 1_000,
                bytes: info.nodes.get(s.node).map(|n| n.bytes as u64).unwrap_or(0),
                epoch: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_core::TaskKind;

    fn cpu_span(name: &str, worker: usize) -> TraceSpan {
        TraceSpan {
            track: Track::Worker(worker),
            name: name.to_string(),
            cat: SpanCat::Task,
            kind: TaskKind::Host,
            device: None,
            stream: None,
            start_us: 1,
            dur_us: 2,
            bytes: 0,
            epoch: None,
        }
    }

    #[test]
    fn metadata_names_every_track() {
        let spans = vec![
            cpu_span("a", 0),
            cpu_span("b", 3),
            TraceSpan {
                track: Track::Device(1),
                name: "k".into(),
                cat: SpanCat::Task,
                kind: TaskKind::Kernel,
                device: Some(1),
                stream: Some(2),
                start_us: 5,
                dur_us: 7,
                bytes: 64,
                epoch: None,
            },
        ];
        let json = chrome_trace(&spans);
        let doc = serde_json::from_str(&json).expect("valid JSON");
        let events = doc.as_array().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"cpu"));
        assert!(names.contains(&"gpu1"));
        assert!(names.contains(&"worker 3"));
        assert!(names.contains(&"stream 2"));
        // The device span keeps its pid/tid mapping.
        let k = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("k"))
            .unwrap();
        assert_eq!(k.get("pid").unwrap().as_u64(), Some(2));
        assert_eq!(k.get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(k.get("args").unwrap().get("bytes").unwrap().as_u64(), Some(64));
    }

    #[test]
    fn sim_spans_map_to_tracks_and_kinds() {
        use hf_core::data::HostVec;
        use hf_core::Heteroflow;
        use hf_sim::Machine;

        let g = Heteroflow::new("sim");
        let x: HostVec<u32> = HostVec::from_vec(vec![0; 4096]);
        let h = g.host("h", || {});
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        k.cover(4096, 256);
        h.precede(&p);
        p.precede(&k);
        let info = g.info().unwrap();

        let machine = Machine::new(2, 1);
        let (_res, sim) = hf_sim::simulate_traced(
            &info,
            &machine,
            hf_core::PlacementPolicy::BalancedLoad,
            |_| hf_gpu::SimDuration::from_nanos(1_000),
        )
        .expect("simulates");
        let spans = spans_from_sim(&info, &sim);
        assert_eq!(spans.len(), 3);
        let kspan = spans.iter().find(|s| s.name == "k").unwrap();
        assert!(matches!(kspan.track, Track::Device(0)));
        assert_eq!(kspan.kind, TaskKind::Kernel);
        let hspan = spans.iter().find(|s| s.name == "h").unwrap();
        assert!(matches!(hspan.track, Track::Worker(_)));
        // The merged export of a simulated schedule parses too.
        assert!(serde_json::from_str(&chrome_trace(&spans)).is_ok());
    }
}
