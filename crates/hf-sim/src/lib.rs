//! Discrete-event performance model of the Heteroflow executor.
//!
//! The paper evaluates on a 40-core, 4-GPU machine (§IV); this environment
//! has one core and no GPU. To regenerate the scaling figures we replay
//! the *same task graphs* (as [`hf_core::GraphInfo`] snapshots), the *same
//! device-placement algorithm* (Algorithm 1 via
//! [`hf_core::placement::device_placement`]), and a work-conserving
//! multi-worker schedule on a **virtual machine** with configurable
//! `(cores, gpus)`. Per-task durations come from the same
//! [`hf_gpu::CostModel`] the software devices use, calibrated against real
//! single-core execution (see the cross-validation tests).
//!
//! Only wall-clock concurrency is virtualized; everything that determines
//! the *shape* of the paper's curves — DAG structure, placement, copy
//! volumes, kernel costs, the worker-blocks-on-device execution style —
//! is computed by the real code paths.

#![warn(missing_docs)]

pub mod calibrate;
pub mod des;
pub mod distributed;
pub mod machine;
pub mod result;
pub mod sweep;

pub use calibrate::measure;
pub use des::{simulate, simulate_traced, SimSpan};
pub use distributed::{
    partition_by_affinity, partition_by_work, simulate_cluster, Cluster, ClusterResult, NodeSpec,
};
pub use machine::{Machine, SchedulerMode};
pub use result::SimResult;
pub use sweep::{sweep, SweepPoint};
