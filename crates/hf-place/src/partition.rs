//! Sequential partitioning: cluster independent cells into local windows.
//!
//! The middle step of the three-step pipeline (Fig 7(c)): the independent
//! cells surviving MIS are grouped by spatial proximity into windows of
//! bounded size; each window becomes one bipartite-matching subproblem.
//! This step is inherently sequential in DREAMPlace's implementation and
//! runs on a CPU — it is what caps CPU-side scaling in Fig 9.

use crate::db::PlacementDb;
use crate::mis::IN_SET;

/// Groups the movable IN_SET cells into windows of at most `window_cap`
/// cells, sorted by (row-band, x) so windows are spatially tight.
pub fn partition_windows(
    db: &PlacementDb,
    states: &[u32],
    window_cap: usize,
) -> Vec<Vec<u32>> {
    assert!(window_cap >= 2, "windows below 2 cells cannot be permuted");
    let mut members: Vec<u32> = (0..db.num_cells() as u32)
        .filter(|&c| states[c as usize] == IN_SET && !db.cells[c as usize].fixed)
        .collect();

    // Row bands of height ~sqrt(cap) keep windows roughly square.
    let band = (window_cap as f64).sqrt().ceil() as u32;
    members.sort_by_key(|&c| {
        let cell = &db.cells[c as usize];
        (cell.y / band.max(1), cell.x, cell.y)
    });

    members
        .chunks(window_cap)
        .filter(|w| w.len() >= 2)
        .map(|w| w.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::PlacementConfig;
    use crate::mis::{make_priorities, mis_cpu};

    fn setup(n: usize) -> (PlacementDb, Vec<u32>) {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: n,
            num_nets: n,
            ..Default::default()
        });
        let (off, nbr) = db.conflict_adjacency();
        let pri = make_priorities(n, 5);
        let st = mis_cpu(&off, &nbr, &pri);
        (db, st)
    }

    #[test]
    fn windows_cover_members_once() {
        let (db, st) = setup(1200);
        let windows = partition_windows(&db, &st, 8);
        let mut seen = std::collections::HashSet::new();
        for w in &windows {
            assert!(w.len() >= 2 && w.len() <= 8);
            for &c in w {
                assert!(seen.insert(c), "cell {c} in two windows");
                assert_eq!(st[c as usize], IN_SET);
                assert!(!db.cells[c as usize].fixed);
            }
        }
        // Every movable member is covered except possibly a trailing
        // window of size 1 that was dropped.
        let movable_members = (0..db.num_cells())
            .filter(|&c| st[c] == IN_SET && !db.cells[c].fixed)
            .count();
        assert!(seen.len() >= movable_members.saturating_sub(1));
    }

    #[test]
    fn windows_are_spatially_tight() {
        let (db, st) = setup(3000);
        let cap = 9;
        let windows = partition_windows(&db, &st, cap);
        assert!(!windows.is_empty());
        // Mean window bounding-box half-perimeter must be far below the
        // layout's.
        let mut mean = 0.0f64;
        for w in &windows {
            let xs: Vec<u32> = w.iter().map(|&c| db.cells[c as usize].x).collect();
            let ys: Vec<u32> = w.iter().map(|&c| db.cells[c as usize].y).collect();
            let bb = (xs.iter().max().unwrap() - xs.iter().min().unwrap())
                + (ys.iter().max().unwrap() - ys.iter().min().unwrap());
            mean += bb as f64;
        }
        mean /= windows.len() as f64;
        let diag = (db.sites_per_row + db.num_rows) as f64;
        assert!(mean < diag * 0.75, "windows too spread: {mean:.1} vs {diag:.1}");
    }

    #[test]
    #[should_panic(expected = "below 2")]
    fn tiny_cap_rejected() {
        let (db, st) = setup(100);
        partition_windows(&db, &st, 1);
    }
}
