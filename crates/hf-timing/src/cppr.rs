//! Common path pessimism removal (CPPR).
//!
//! Under on-chip variation a timing check assumes the launch clock is
//! *late* and the capture clock is *early*. Where the two clock paths
//! share a common prefix through the clock tree, that pessimism is
//! physically impossible — the same buffer cannot be simultaneously fast
//! and slow — and must be credited back (paper refs [29][30][31]). This
//! module builds a synthetic balanced clock tree over path endpoints and
//! computes per-path CPPR credits.

use crate::netlist::Circuit;
use crate::paths::TimingPath;
use crate::views::View;

/// A complete binary clock tree of `levels` levels. Leaves are numbered
/// `0..2^levels`; every path endpoint (launch/capture point) maps to a
/// leaf. Each tree segment has a nominal delay and an early/late spread
/// controlled by the view's OCV factor.
#[derive(Debug, Clone)]
pub struct ClockTree {
    /// Tree depth (segments from root to a leaf).
    pub levels: u32,
    /// Nominal delay per tree segment (ns).
    pub seg_delay: f32,
    /// Leaf assignment per gate id (only endpoints are mapped).
    leaf_of: Vec<u32>,
}

impl ClockTree {
    /// Builds a clock tree over the circuit's primary inputs (launch
    /// points) and outputs (capture points). Endpoints are assigned
    /// leaves round-robin, so nearby gates share deep common prefixes.
    pub fn build(c: &Circuit, seg_delay: f32) -> ClockTree {
        let endpoints = c.primary_inputs.len() + c.primary_outputs.len();
        let levels = (endpoints.max(2) as f64).log2().ceil() as u32;
        let mut leaf_of = vec![u32::MAX; c.num_gates()];
        for (i, &g) in c
            .primary_inputs
            .iter()
            .chain(c.primary_outputs.iter())
            .enumerate()
        {
            leaf_of[g as usize] = (i as u32) % (1u32 << levels);
        }
        ClockTree {
            levels,
            seg_delay,
            leaf_of,
        }
    }

    /// Leaf index of a mapped endpoint gate.
    pub fn leaf(&self, gate: u32) -> Option<u32> {
        let l = self.leaf_of[gate as usize];
        (l != u32::MAX).then_some(l)
    }

    /// Number of tree segments shared by the root-to-leaf paths of two
    /// leaves (leading common bits of their leaf indices).
    pub fn common_depth(&self, a: u32, b: u32) -> u32 {
        if self.levels == 0 {
            return 0;
        }
        let diff = a ^ b;
        // Bits are consumed root-first from the most significant of
        // `levels` bits; the common prefix ends at the first differing bit.
        
        if diff == 0 {
            self.levels
        } else {
            self.levels - (32 - diff.leading_zeros()).min(self.levels)
        }
    }

    /// Late-minus-early delay spread of one tree segment under `ocv`.
    #[inline]
    pub fn segment_spread(&self, ocv: f32) -> f32 {
        2.0 * ocv * self.seg_delay
    }

    /// CPPR credit between a launch gate and a capture gate: the
    /// impossible pessimism accumulated along their common clock prefix.
    pub fn cppr_credit(&self, launch: u32, capture: u32, ocv: f32) -> f32 {
        match (self.leaf(launch), self.leaf(capture)) {
            (Some(a), Some(b)) => self.common_depth(a, b) as f32 * self.segment_spread(ocv),
            _ => 0.0,
        }
    }
}

/// Slack after CPPR credit for each path: `slack + credit(launch,
/// capture)`. Returns the credits applied.
pub fn apply_cppr(paths: &mut [TimingPath], tree: &ClockTree, view: &View) -> Vec<f32> {
    let ocv = view.corner.ocv;
    paths
        .iter_mut()
        .map(|p| {
            let launch = p.gates[0];
            let capture = *p.gates.last().expect("paths are non-empty");
            let credit = tree.cppr_credit(launch, capture, ocv);
            p.slack += credit;
            credit
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitConfig;
    use crate::views::{Corner, Mode};

    fn view(ocv: f32) -> View {
        View {
            corner: Corner {
                name: "t".into(),
                delay_scale: 1.0,
                ocv,
            },
            mode: Mode {
                name: "m".into(),
                clock_period: 1.0,
            },
            seed: 0,
        }
    }

    #[test]
    fn common_depth_by_leading_bits() {
        let t = ClockTree {
            levels: 4,
            seg_delay: 0.05,
            leaf_of: vec![],
        };
        assert_eq!(t.common_depth(0b0000, 0b0000), 4);
        assert_eq!(t.common_depth(0b0000, 0b0001), 3);
        assert_eq!(t.common_depth(0b0000, 0b1000), 0);
        assert_eq!(t.common_depth(0b0101, 0b0111), 2);
    }

    #[test]
    fn credit_scales_with_ocv_and_depth() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 200,
            ..Default::default()
        });
        let t = ClockTree::build(&c, 0.05);
        let a = c.primary_inputs[0];
        // Identical leaves (self-correlation) give maximum credit.
        let full = t.cppr_credit(a, a, 0.1);
        assert!((full - t.levels as f32 * 0.05 * 0.2).abs() < 1e-6);
        // Zero OCV gives zero credit.
        assert_eq!(t.cppr_credit(a, a, 0.0), 0.0);
    }

    #[test]
    fn apply_cppr_never_decreases_slack() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 400,
            ..Default::default()
        });
        let v = view(0.08);
        let tree = ClockTree::build(&c, 0.04);
        let mut paths = crate::paths::k_critical_paths(&c, &v, 25);
        let before: Vec<f32> = paths.iter().map(|p| p.slack).collect();
        let credits = apply_cppr(&mut paths, &tree, &v);
        assert_eq!(credits.len(), paths.len());
        for ((p, b), cr) in paths.iter().zip(&before).zip(&credits) {
            assert!(*cr >= 0.0);
            assert!((p.slack - (b + cr)).abs() < 1e-6);
        }
    }

    #[test]
    fn unmapped_gate_gets_no_credit() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 100,
            ..Default::default()
        });
        let t = ClockTree::build(&c, 0.05);
        // A logic gate in the middle is not an endpoint.
        let mid = (c.primary_inputs.len() + 1) as u32;
        assert_eq!(t.leaf(mid), None);
        assert_eq!(t.cppr_credit(mid, c.primary_outputs[0], 0.1), 0.0);
    }
}
