//! Heteroflow-parallel STA: the levelized sweep expressed as a task
//! graph.
//!
//! OpenTimer 2.0 parallelizes its propagation with Taskflow by making
//! each levelization level a layer of parallel tasks (paper refs
//! [13][24]). This module does the same with Heteroflow: level `l`'s
//! gates are split into chunks, one host task per chunk, with
//! level-to-level dependency edges. Results are identical to
//! [`run_sta`]; the point is exercising the paper's own runtime on the
//! paper's motivating workload shape (wide, shallow, irregular layers).

use crate::netlist::Circuit;
use crate::sta::{gate_delay, run_sta, TimingReport};
use crate::views::View;
use hf_core::{Executor, Heteroflow, HfError};
use parking_lot::RwLock;
use std::sync::Arc;

/// Shared mutable timing state threaded through the chunk tasks.
///
/// Each gate's slot is written by exactly one chunk task per phase, and
/// the level-by-level dependency edges order every read after the write
/// it needs, so a lock-free `Vec` behind an `RwLock` (locked per chunk,
/// not per gate) is race-free by construction.
struct SweepState {
    arrival: RwLock<Vec<f32>>,
    required: RwLock<Vec<f32>>,
}

/// Builds and runs the parallel forward/backward sweep on `executor`.
///
/// `chunk` controls task granularity (gates per task; the paper's
/// million-scale graphs need coarse chunks to amortize scheduling).
pub fn run_sta_parallel(
    executor: &Executor,
    circuit: &Arc<Circuit>,
    view: &View,
    chunk: usize,
) -> Result<TimingReport, HfError> {
    let n = circuit.num_gates();
    let chunk = chunk.max(1);
    let state = Arc::new(SweepState {
        arrival: RwLock::new(vec![0.0; n]),
        required: RwLock::new(vec![f32::INFINITY; n]),
    });

    let g = Heteroflow::new("parallel-sta");

    // Forward phase: one task layer per level.
    let mut prev_layer: Vec<hf_core::HostTask> = Vec::new();
    for (lv, gates) in circuit.levels.iter().enumerate() {
        let mut layer = Vec::new();
        for (ci, chunk_gates) in gates.chunks(chunk).enumerate() {
            let task = g.host(&format!("fwd[{lv}][{ci}]"), {
                let (circuit, view, state) =
                    (Arc::clone(circuit), view.clone(), Arc::clone(&state));
                let chunk_gates = chunk_gates.to_vec();
                move || {
                    // Reads target lower levels only; writes this chunk.
                    let mut arrival = state.arrival.write();
                    for &gt in &chunk_gates {
                        let gi = gt as usize;
                        let at = circuit.fanin[gi]
                            .iter()
                            .map(|&f| arrival[f as usize])
                            .fold(0.0f32, f32::max);
                        arrival[gi] = at + gate_delay(&circuit, gi, &view);
                    }
                }
            });
            for p in &prev_layer {
                task.succeed(p);
            }
            layer.push(task);
        }
        prev_layer = layer;
    }

    // Backward phase: seeded at endpoints, runs levels in reverse. The
    // first backward layer succeeds the last forward layer.
    let period = view.mode.clock_period;
    let seed = g.host("seed_required", {
        let (circuit, state) = (Arc::clone(circuit), Arc::clone(&state));
        move || {
            let mut required = state.required.write();
            for &po in &circuit.primary_outputs {
                required[po as usize] = period;
            }
        }
    });
    for p in &prev_layer {
        seed.succeed(p);
    }
    let mut prev_layer = vec![seed];
    for (lv, gates) in circuit.levels.iter().enumerate().rev() {
        let mut layer = Vec::new();
        for (ci, chunk_gates) in gates.chunks(chunk).enumerate() {
            let task = g.host(&format!("bwd[{lv}][{ci}]"), {
                let (circuit, view, state) =
                    (Arc::clone(circuit), view.clone(), Arc::clone(&state));
                let chunk_gates = chunk_gates.to_vec();
                move || {
                    let mut required = state.required.write();
                    for &gt in &chunk_gates {
                        let gi = gt as usize;
                        let rq = circuit.fanout[gi]
                            .iter()
                            .map(|&s| {
                                let si = s as usize;
                                required[si] - gate_delay(&circuit, si, &view)
                            })
                            .fold(f32::INFINITY, f32::min);
                        if rq < required[gi] {
                            required[gi] = rq;
                        }
                    }
                }
            });
            for p in &prev_layer {
                task.succeed(p);
            }
            layer.push(task);
        }
        prev_layer = layer;
    }

    executor.run(&g).wait()?;

    // Assemble the report like run_sta does (clamping unreachable).
    let arrival = state.arrival.read().clone();
    let mut required = state.required.read().clone();
    for r in required.iter_mut() {
        if !r.is_finite() {
            *r = period;
        }
    }
    let slack: Vec<f32> = required.iter().zip(&arrival).map(|(r, a)| r - a).collect();
    let mut wns = 0.0f32;
    let mut tns = 0.0f32;
    for &po in &circuit.primary_outputs {
        let s = slack[po as usize];
        if s < 0.0 {
            wns = wns.min(s);
            tns += s;
        }
    }
    Ok(TimingReport {
        arrival,
        required,
        slack,
        wns,
        tns,
        clock_period: period,
    })
}

/// Convenience: compares the parallel sweep with the sequential oracle.
pub fn verify_against_sequential(
    executor: &Executor,
    circuit: &Arc<Circuit>,
    view: &View,
    chunk: usize,
) -> Result<(), String> {
    let par = run_sta_parallel(executor, circuit, view, chunk)
        .map_err(|e| format!("parallel sweep failed: {e}"))?;
    let seq = run_sta(circuit, view);
    for gi in 0..circuit.num_gates() {
        if (par.arrival[gi] - seq.arrival[gi]).abs() > 1e-4 {
            return Err(format!(
                "arrival mismatch at gate {gi}: {} vs {}",
                par.arrival[gi], seq.arrival[gi]
            ));
        }
        if (par.required[gi] - seq.required[gi]).abs() > 1e-4 {
            return Err(format!(
                "required mismatch at gate {gi}: {} vs {}",
                par.required[gi], seq.required[gi]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitConfig;
    use crate::views::make_views;

    fn circuit(n: usize, seed: u64) -> Arc<Circuit> {
        Arc::new(Circuit::synthesize(&CircuitConfig {
            num_gates: n,
            seed,
            ..Default::default()
        }))
    }

    #[test]
    fn parallel_equals_sequential() {
        let ex = Executor::new(4, 0);
        let c = circuit(1200, 1);
        let v = &make_views(1, 0.4)[0];
        verify_against_sequential(&ex, &c, v, 64).expect("sweeps agree");
    }

    #[test]
    fn various_chunk_sizes_agree() {
        let ex = Executor::new(3, 0);
        let c = circuit(600, 2);
        let v = &make_views(1, 0.3)[0];
        for chunk in [1, 7, 100, 10_000] {
            verify_against_sequential(&ex, &c, v, chunk)
                .unwrap_or_else(|e| panic!("chunk {chunk}: {e}"));
        }
    }

    #[test]
    fn wns_and_tns_match() {
        let ex = Executor::new(2, 0);
        let c = circuit(800, 3);
        let v = &make_views(1, 0.05)[0]; // tight clock: violations exist
        let par = run_sta_parallel(&ex, &c, v, 32).expect("runs");
        let seq = run_sta(&c, v);
        assert!((par.wns - seq.wns).abs() < 1e-4);
        assert!((par.tns - seq.tns).abs() < 1e-3);
        assert!(par.wns < 0.0, "expected violations under a tight clock");
    }
}
