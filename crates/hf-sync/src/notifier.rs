//! Eventcount-style notifier for the adaptive wake/sleep strategy.
//!
//! Workers that fail to find work repeatedly must eventually sleep, but a
//! sleeping worker must not miss a task pushed concurrently with its
//! decision to sleep. The eventcount protocol solves this with a two-phase
//! wait: the waiter first *prepares* (announcing itself and capturing the
//! current epoch), then re-checks its predicate (is there work?), and only
//! then *commits* the wait. A notifier that bumps the epoch between prepare
//! and commit causes the commit to return immediately.
//!
//! The Heteroflow executor uses this to implement the paper's adaptive
//! strategy: "ensure one thief exists as long as an active worker is
//! running a task" (§III-C).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Opaque token returned by [`Notifier::prepare_wait`]; pass it back to
/// [`Notifier::commit_wait`] or [`Notifier::cancel_wait`].
#[derive(Debug, Clone, Copy)]
pub struct WaitToken {
    epoch: u64,
}

#[derive(Default)]
struct State {
    /// Number of committed (actually sleeping) waiters.
    sleepers: usize,
}

/// A Dekker-style eventcount.
pub struct Notifier {
    /// Epoch counter; even the fast path (no sleepers) bumps it so that a
    /// prepared-but-uncommitted waiter observes the notification.
    epoch: AtomicU64,
    /// Number of prepared waiters (may or may not commit).
    waiters: AtomicU64,
    state: Mutex<State>,
    cv: Condvar,
}

impl Default for Notifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Notifier {
    /// Creates a notifier with no waiters.
    pub fn new() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            waiters: AtomicU64::new(0),
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    /// Phase 1 of waiting: announce intent and capture the epoch.
    ///
    /// After this call the caller must re-check its wait predicate; if the
    /// predicate turned true, call [`cancel_wait`](Self::cancel_wait),
    /// otherwise [`commit_wait`](Self::commit_wait).
    pub fn prepare_wait(&self) -> WaitToken {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        // SeqCst: the waiter-count increment must be visible to notifiers
        // before we read the epoch (Dekker pattern with notify()).
        let epoch = self.epoch.load(Ordering::SeqCst);
        WaitToken { epoch }
    }

    /// Aborts a prepared wait (the predicate turned true on re-check).
    pub fn cancel_wait(&self, _t: WaitToken) {
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Phase 2: blocks until a notification arrives that is newer than the
    /// token's epoch. Returns immediately if one already did.
    pub fn commit_wait(&self, t: WaitToken) {
        let mut st = self.state.lock().unwrap();
        if self.epoch.load(Ordering::SeqCst) != t.epoch {
            // A notification raced in between prepare and commit.
            drop(st);
            self.waiters.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        st.sleepers += 1;
        while self.epoch.load(Ordering::SeqCst) == t.epoch {
            st = self.cv.wait(st).unwrap();
        }
        st.sleepers -= 1;
        drop(st);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes at least one waiter (prepared or committed). Cheap when no
    /// one is waiting: a single relaxed load.
    pub fn notify_one(&self) {
        // SeqCst: pair with prepare_wait's increment-then-load.
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _st = self.state.lock().unwrap();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.cv.notify_one();
    }

    /// Wakes up to `n` waiters with a single epoch bump and one lock
    /// acquisition — the batched-release path uses this instead of `n`
    /// separate [`notify_one`](Self::notify_one) calls, which would take
    /// the lock and bump the epoch `n` times.
    ///
    /// When `n` covers everyone sleeping, a single `notify_all` is issued
    /// (one futex broadcast beats `n` sequential wakes).
    pub fn notify_n(&self, n: usize) {
        if n == 0 || self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let st = self.state.lock().unwrap();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if n >= st.sleepers {
            self.cv.notify_all();
        } else {
            for _ in 0..n {
                self.cv.notify_one();
            }
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _st = self.state.lock().unwrap();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Number of prepared waiters (racy; diagnostic only).
    pub fn num_waiters(&self) -> u64 {
        self.waiters.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn cancel_leaves_no_waiters() {
        let n = Notifier::new();
        let t = n.prepare_wait();
        assert_eq!(n.num_waiters(), 1);
        n.cancel_wait(t);
        assert_eq!(n.num_waiters(), 0);
    }

    #[test]
    fn notify_between_prepare_and_commit_is_not_lost() {
        let n = Notifier::new();
        let t = n.prepare_wait();
        n.notify_one();
        // Must return immediately, not deadlock.
        n.commit_wait(t);
        assert_eq!(n.num_waiters(), 0);
    }

    #[test]
    fn sleeping_waiter_is_woken() {
        let n = Arc::new(Notifier::new());
        let woke = Arc::new(AtomicBool::new(false));
        let (n2, w2) = (Arc::clone(&n), Arc::clone(&woke));
        let h = thread::spawn(move || {
            let t = n2.prepare_wait();
            n2.commit_wait(t);
            w2.store(true, Ordering::SeqCst);
        });
        // Give the waiter time to commit, then notify.
        while n.num_waiters() == 0 {
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(10));
        n.notify_one();
        h.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let n = Arc::new(Notifier::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let t = n.prepare_wait();
                    n.commit_wait(t);
                })
            })
            .collect();
        while n.num_waiters() < 4 {
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(10));
        n.notify_all();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Producer/consumer over a shared flag never deadlocks: the consumer
    /// uses the full prepare / re-check / commit protocol.
    #[test]
    fn no_lost_wakeup_under_racing_producer() {
        for _ in 0..50 {
            let n = Arc::new(Notifier::new());
            let flag = Arc::new(AtomicBool::new(false));
            let (nc, fc) = (Arc::clone(&n), Arc::clone(&flag));
            let consumer = thread::spawn(move || loop {
                if fc.load(Ordering::SeqCst) {
                    break;
                }
                let t = nc.prepare_wait();
                if fc.load(Ordering::SeqCst) {
                    nc.cancel_wait(t);
                    break;
                }
                nc.commit_wait(t);
            });
            flag.store(true, Ordering::SeqCst);
            n.notify_one();
            consumer.join().unwrap();
        }
    }
}
