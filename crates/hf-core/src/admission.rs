//! Pluggable admission policies for the multi-tenant [`crate::Fleet`].
//!
//! A fleet holds one queue per tenant and repeatedly asks its
//! [`AdmissionPolicy`] which queue's head submission to admit into the
//! shared executor next. The policy sees a snapshot of every *eligible*
//! lane (non-empty queue, tenant below its in-flight quota) as
//! [`LaneView`]s and returns an index; the fleet pops that lane's head,
//! dispatches it, and notifies the policy via
//! [`AdmissionPolicy::admitted`] so virtual-time bookkeeping can advance.
//!
//! Three policies ship in-tree:
//!
//! * [`Fifo`] — global arrival order, tenant-blind. The baseline: a
//!   large batch backlog starves small latency-sensitive tenants.
//! * [`WeightedFair`] — start-time fair queueing over per-tenant virtual
//!   time: each admission advances the tenant's virtual finish tag by
//!   `cost / weight`, and the lane with the smallest start tag wins.
//!   Idle tenants re-enter at the current virtual clock (no credit
//!   hoarding), so a latency-sensitive tenant submitting occasionally
//!   always schedules near the front regardless of batch backlog depth.
//! * [`StrictPriority`] — highest [`TenantConfig::priority`] wins, FIFO
//!   within a level. Starvation of low-priority tenants is accepted by
//!   construction.
//!
//! Policies are `Send` objects owned by the fleet's state lock; they may
//! keep internal bookkeeping without further synchronization.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies one tenant of a [`crate::Fleet`]. Cheap to clone (shared
/// string); compares and hashes by name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) Arc<str>);

impl TenantId {
    /// Creates a tenant id from a name.
    pub fn new(name: &str) -> Self {
        Self(Arc::from(name))
    }

    /// The tenant's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for TenantId {
    fn from(s: String) -> Self {
        Self(Arc::from(s.as_str()))
    }
}

/// Per-tenant configuration: fairness inputs (weight, priority) and
/// quotas (in-flight cap, queue bound, GPU-time budget).
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Weighted-fair share. A weight-4 tenant accrues virtual time at a
    /// quarter of the rate of a weight-1 tenant for equal work, so it is
    /// scheduled four times as often. Clamped to at least 1.
    pub weight: u32,
    /// Strict-priority level (higher runs first under
    /// [`StrictPriority`]; ignored by the other policies).
    pub priority: u8,
    /// Maximum submissions of this tenant in flight at once; further
    /// submissions park in the tenant's queue (backpressure, not an
    /// error).
    pub max_inflight: usize,
    /// Maximum submissions parked in the tenant's queue; beyond it
    /// `submit` returns [`crate::HfError::FleetSaturated`].
    pub max_queued: usize,
    /// Budget of modeled GPU-nanoseconds (cost-model estimates plus
    /// retry charges). `None` is unlimited; exceeding it returns
    /// [`crate::HfError::QuotaExceeded`].
    pub gpu_ns_budget: Option<u64>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        Self {
            weight: 1,
            priority: 0,
            max_inflight: usize::MAX,
            max_queued: 1024,
            gpu_ns_budget: None,
        }
    }
}

/// Snapshot of one admissible tenant lane, handed to
/// [`AdmissionPolicy::pick`]. Only lanes that *can* be admitted appear
/// (non-empty queue, tenant under its in-flight quota, fleet under its
/// global cap).
#[derive(Debug)]
pub struct LaneView<'a> {
    /// The tenant's name.
    pub tenant: &'a str,
    /// Weighted-fair share (≥ 1).
    pub weight: u32,
    /// Strict-priority level.
    pub priority: u8,
    /// Submissions waiting in this lane (including the head).
    pub queued: usize,
    /// Submissions of this tenant currently in flight.
    pub inflight: usize,
    /// Global arrival sequence number of the head submission (smaller =
    /// older).
    pub head_seq: u64,
    /// Modeled cost of the head submission (GPU-nanoseconds from the
    /// cost model, with a flat per-task fallback).
    pub head_cost_ns: u64,
}

/// Chooses which tenant's head submission the fleet admits next.
pub trait AdmissionPolicy: Send {
    /// Stable policy name (surfaced in fleet snapshots and `/tenants`).
    fn name(&self) -> &'static str;

    /// Picks the index (into `lanes`) of the lane to admit from, or
    /// `None` to admit nothing this round. `lanes` is never empty.
    fn pick(&mut self, lanes: &[LaneView<'_>]) -> Option<usize>;

    /// Notified after the picked lane's head was admitted with its
    /// modeled cost — the hook where virtual-time bookkeeping advances.
    fn admitted(&mut self, _lane: &LaneView<'_>, _cost_ns: u64) {}
}

/// Global arrival order, tenant-blind (the baseline policy).
#[derive(Debug, Default)]
pub struct Fifo;

impl AdmissionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&mut self, lanes: &[LaneView<'_>]) -> Option<usize> {
        lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.head_seq)
            .map(|(i, _)| i)
    }
}

/// Start-time fair queueing (SFQ) over per-tenant virtual time.
///
/// Each admission is tagged with a start time `S = max(V, F_t)` where
/// `V` is the global virtual clock and `F_t` the tenant's previous
/// finish tag; the tenant's finish advances to `S + cost / weight` and
/// `V` jumps to the admitted start. The lane with the smallest start
/// tag is picked (ties broken by arrival order). Tenants idle for a
/// while re-enter at `V` — they get immediate service but no banked
/// credit, which is exactly the behavior that keeps a small
/// latency-sensitive tenant's p99 flat under a deep batch backlog.
#[derive(Debug, Default)]
pub struct WeightedFair {
    vclock: f64,
    finish: HashMap<String, f64>,
}

impl WeightedFair {
    /// Creates the policy with the virtual clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn start_tag(&self, lane: &LaneView<'_>) -> f64 {
        self.finish
            .get(lane.tenant)
            .copied()
            .unwrap_or(self.vclock)
            .max(self.vclock)
    }
}

impl AdmissionPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "weighted_fair"
    }

    fn pick(&mut self, lanes: &[LaneView<'_>]) -> Option<usize> {
        lanes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                self.start_tag(a)
                    .total_cmp(&self.start_tag(b))
                    .then(a.head_seq.cmp(&b.head_seq))
            })
            .map(|(i, _)| i)
    }

    fn admitted(&mut self, lane: &LaneView<'_>, cost_ns: u64) {
        let s = self.start_tag(lane);
        self.vclock = s;
        let w = lane.weight.max(1) as f64;
        self.finish
            .insert(lane.tenant.to_string(), s + cost_ns as f64 / w);
    }
}

/// Highest [`TenantConfig::priority`] first; FIFO within a level.
/// Low-priority starvation under sustained high-priority load is the
/// intended semantics.
#[derive(Debug, Default)]
pub struct StrictPriority;

impl AdmissionPolicy for StrictPriority {
    fn name(&self) -> &'static str {
        "strict_priority"
    }

    fn pick(&mut self, lanes: &[LaneView<'_>]) -> Option<usize> {
        lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (std::cmp::Reverse(l.priority), l.head_seq))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane<'a>(
        tenant: &'a str,
        weight: u32,
        priority: u8,
        head_seq: u64,
        head_cost_ns: u64,
    ) -> LaneView<'a> {
        LaneView {
            tenant,
            weight,
            priority,
            queued: 1,
            inflight: 0,
            head_seq,
            head_cost_ns,
        }
    }

    #[test]
    fn fifo_picks_oldest() {
        let mut p = Fifo;
        let lanes = [lane("a", 1, 0, 9, 100), lane("b", 1, 0, 3, 100)];
        assert_eq!(p.pick(&lanes), Some(1));
    }

    #[test]
    fn strict_priority_beats_age() {
        let mut p = StrictPriority;
        let lanes = [lane("old", 1, 0, 1, 100), lane("urgent", 1, 7, 50, 100)];
        assert_eq!(p.pick(&lanes), Some(1));
        // Same priority falls back to arrival order.
        let lanes = [lane("a", 1, 3, 8, 100), lane("b", 1, 3, 2, 100)];
        assert_eq!(p.pick(&lanes), Some(1));
    }

    #[test]
    fn weighted_fair_interleaves_small_tenant_into_backlog() {
        // Batch tenant (weight 1) has a deep backlog of cost-1000 jobs;
        // the small tenant (weight 4) arrives later with cost-100 jobs.
        // SFQ must schedule the small tenant ahead of the remaining
        // backlog rather than behind all of it.
        let mut p = WeightedFair::new();
        let b = lane("batch", 1, 0, 0, 1000);
        assert_eq!(p.pick(&[b]), Some(0));
        p.admitted(&lane("batch", 1, 0, 0, 1000), 1000);

        // Small tenant shows up: its start tag is the current vclock,
        // batch's is its finish tag (1000) — small wins.
        let lanes = [lane("batch", 1, 0, 1, 1000), lane("small", 4, 0, 10, 100)];
        assert_eq!(p.pick(&lanes), Some(1));
        p.admitted(&lanes[1], 100);

        // Small's finish advanced only by cost/weight = 25; it keeps
        // winning until its virtual time catches the backlog's.
        let lanes = [lane("batch", 1, 0, 1, 1000), lane("small", 4, 0, 11, 100)];
        assert_eq!(p.pick(&lanes), Some(1));
    }

    #[test]
    fn weighted_fair_respects_weights_long_run() {
        // Equal cost jobs, weights 3:1 — over many admissions the
        // weight-3 tenant is picked ~3x as often.
        let mut p = WeightedFair::new();
        let mut counts = (0u32, 0u32);
        for seq in 0..400u64 {
            let lanes = [lane("heavy", 3, 0, seq, 300), lane("light", 1, 0, seq, 300)];
            let i = p.pick(&lanes).unwrap();
            p.admitted(&lanes[i], 300);
            if i == 0 {
                counts.0 += 1;
            } else {
                counts.1 += 1;
            }
        }
        assert!(
            counts.0 > counts.1 * 2 && counts.0 < counts.1 * 4,
            "expected ~3:1 split, got {counts:?}"
        );
    }

    #[test]
    fn tenant_id_semantics() {
        let a = TenantId::new("svc-a");
        let b: TenantId = "svc-a".into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "svc-a");
        assert_eq!(TenantId::from("x".to_string()).as_str(), "x");
    }
}
