//! Property-based tests for the timing substrate.

use hf_timing::views::{make_views, Corner, Mode, View};
use hf_timing::{k_critical_paths, parse_bench, run_sta, write_bench, Circuit, CircuitConfig};
use proptest::prelude::*;

fn arb_view() -> impl Strategy<Value = View> {
    (0.5f32..2.0, 0.1f32..2.0, 0.0f32..0.2).prop_map(|(scale, period, ocv)| View {
        corner: Corner {
            name: "p".into(),
            delay_scale: scale,
            ocv,
        },
        mode: Mode {
            name: "m".into(),
            clock_period: period,
        },
        seed: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arrival times from the levelized sweep equal the reference
    /// longest-path recurrence on random circuits and views, and slack
    /// identity holds.
    #[test]
    fn sta_matches_reference(
        gates in 50usize..400,
        seed in any::<u64>(),
        view in arb_view(),
    ) {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: gates,
            seed,
            ..Default::default()
        });
        let r = run_sta(&c, &view);
        let mut reference = vec![0.0f32; c.num_gates()];
        #[allow(clippy::needless_range_loop)] // builds reference[g] from reference[<g]
        for g in 0..c.num_gates() {
            let at = c.fanin[g]
                .iter()
                .map(|&f| reference[f as usize])
                .fold(0.0f32, f32::max);
            reference[g] = at + hf_timing::sta::gate_delay(&c, g, &view);
        }
        for (g, want) in reference.iter().enumerate() {
            prop_assert!((r.arrival[g] - want).abs() < 1e-4);
            prop_assert!((r.slack[g] - (r.required[g] - r.arrival[g])).abs() < 1e-4);
        }
        // WNS is the worst endpoint slack (when negative).
        let worst = c.primary_outputs.iter()
            .map(|&po| r.slack[po as usize])
            .fold(f32::INFINITY, f32::min);
        if worst < 0.0 {
            prop_assert!((r.wns - worst).abs() < 1e-5);
        } else {
            prop_assert_eq!(r.wns, 0.0);
        }
    }

    /// Critical paths come out in descending delay order, are valid
    /// PI→PO walks, and the top path's delay equals the max PO arrival.
    #[test]
    fn critical_paths_are_consistent(
        gates in 50usize..300,
        seed in any::<u64>(),
        k in 1usize..20,
    ) {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: gates,
            seed,
            ..Default::default()
        });
        let view = &make_views(1, 0.5)[0];
        let r = run_sta(&c, view);
        let paths = k_critical_paths(&c, view, k);
        prop_assert!(!paths.is_empty());
        for w in paths.windows(2) {
            prop_assert!(w[0].delay >= w[1].delay - 1e-5);
        }
        for p in &paths {
            prop_assert!(c.primary_inputs.contains(&p.gates[0]));
            prop_assert!(c.primary_outputs.contains(p.gates.last().unwrap()));
            for e in p.gates.windows(2) {
                prop_assert!(c.fanout[e[0] as usize].contains(&e[1]));
            }
        }
        let max_po_arrival = c.primary_outputs.iter()
            .map(|&po| r.arrival[po as usize])
            .fold(0.0f32, f32::max);
        prop_assert!((paths[0].delay - max_po_arrival).abs() < 1e-4,
            "top path {} vs max arrival {}", paths[0].delay, max_po_arrival);
    }

    /// `.bench` round trip preserves structure and timing for random
    /// circuits.
    #[test]
    fn bench_round_trip_preserves_timing(
        gates in 20usize..150,
        seed in any::<u64>(),
    ) {
        let orig = Circuit::synthesize(&CircuitConfig {
            num_gates: gates,
            seed,
            ..Default::default()
        });
        let back = parse_bench(&write_bench(&orig)).expect("own output parses");
        prop_assert_eq!(back.num_gates(), orig.num_gates());
        prop_assert_eq!(back.num_edges(), orig.num_edges());
        let view = &make_views(1, 0.5)[0];
        // delay_factor is not serialized (the format has no per-instance
        // variation), so compare with variation disabled.
        let mut flat_orig = orig.clone();
        for g in &mut flat_orig.gates {
            g.delay_factor = 1.0;
        }
        let ra = run_sta(&flat_orig, view);
        let rb = run_sta(&back, view);
        for (a, b) in ra.arrival.iter().zip(&rb.arrival) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }
}
