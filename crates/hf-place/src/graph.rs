//! The flattened K-iteration detailed-placement task graph — Fig 8.
//!
//! "To enable task overlaps between iterations, we flatten the task graph
//! for a given iteration number" (§IV-B). Each iteration contributes:
//! a CPU *prepare* task (new random priorities, reset states), pulls of
//! the per-iteration arrays, a chain of two-phase MIS kernel rounds on
//! the GPU, a push of the decided states, a sequential CPU *partition*
//! task, `matchers` parallel CPU *matching* tasks, and a CPU *apply*
//! task feeding the next iteration. The CSR adjacency is pulled once and
//! reused by every iteration through transitive dependencies (the data
//! reuse pattern of Listing 10).

use crate::db::PlacementDb;
use crate::matching::hungarian;
use crate::mis::{self, make_priorities, UNDECIDED};
use crate::partition::partition_windows;
use hf_core::data::HostVec;
use hf_core::Heteroflow;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Tuning knobs for the placement graph.
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    /// Flattened iterations (the paper sweeps 5..50; converges in 10-50).
    pub iterations: usize,
    /// Max cells per matching window.
    pub window_cap: usize,
    /// Parallel matching tasks per iteration.
    pub matchers: usize,
    /// MIS select/commit rounds per iteration (O(log n) suffices).
    pub mis_rounds: usize,
    /// Priority stream seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            iterations: 2,
            window_cap: 6,
            matchers: 4,
            mis_rounds: 0, // 0 = auto from cell count
            seed: 0xD1CE,
        }
    }
}

/// Shared mutable state threaded through the host tasks.
pub struct PlaceRun {
    /// The evolving placement.
    pub db: Arc<RwLock<PlacementDb>>,
    /// HPWL recorded by each iteration's apply task.
    pub hpwl_trace: Arc<Mutex<Vec<u64>>>,
}

/// Builds the Fig 8 graph over `db`. Returns the graph and the shared
/// run state (read the final placement from `PlaceRun::db` after the run).
pub fn build_placement_graph(
    db: PlacementDb,
    cfg: GraphConfig,
) -> (Heteroflow, PlaceRun) {
    let n = db.num_cells();
    let rounds = if cfg.mis_rounds > 0 {
        cfg.mis_rounds
    } else {
        (usize::BITS - n.leading_zeros()) as usize + 4
    };
    let (offsets, neighbors) = db.conflict_adjacency();

    let g = Heteroflow::new("detailed-placement");
    let db = Arc::new(RwLock::new(db));
    let hpwl_trace = Arc::new(Mutex::new(Vec::new()));

    // Static CSR arrays: pulled once, reused every iteration.
    let h_off: HostVec<u32> = HostVec::from_vec(offsets);
    let h_nbr: HostVec<u32> = HostVec::from_vec(if neighbors.is_empty() {
        vec![u32::MAX]
    } else {
        neighbors
    });
    // Per-iteration arrays share one host buffer each; the prepare task
    // rewrites them and the stateful pulls pick up the new contents.
    let h_pri: HostVec<u32> = HostVec::from_vec(vec![0; n]);
    let h_st: HostVec<u32> = HostVec::from_vec(vec![UNDECIDED; n]);

    let pull_off = g.pull("pull_adj_off", &h_off);
    let pull_nbr = g.pull("pull_adj_nbr", &h_nbr);

    let mut prev_apply: Option<hf_core::HostTask> = None;
    for it in 0..cfg.iterations {
        // 1) CPU: fresh priorities + reset states.
        let prepare = g.host(&format!("prepare[{it}]"), {
            let (h_pri, h_st) = (h_pri.clone(), h_st.clone());
            let seed = cfg.seed.wrapping_add(it as u64);
            move || {
                *h_pri.write() = make_priorities(n, seed);
                h_st.write().iter_mut().for_each(|s| *s = UNDECIDED);
            }
        });
        if let Some(prev) = &prev_apply {
            prepare.succeed(prev);
        }

        // 2) H2D pulls of the per-iteration arrays.
        let pull_pri = g.pull(&format!("pull_pri[{it}]"), &h_pri);
        let pull_st = g.pull(&format!("pull_st[{it}]"), &h_st);
        prepare.precede_all(&[&pull_pri, &pull_st]);

        // 3) GPU: MIS select/commit rounds.
        let sources = [&pull_off, &pull_nbr, &pull_pri, &pull_st];
        let mut prev_kernel: Option<hf_core::KernelTask> = None;
        for r in 0..rounds {
            let sel = g.kernel(
                &format!("mis_select[{it}][{r}]"),
                &sources,
                mis::select_kernel(),
            );
            sel.cover(n, 256).work_units(n as f64);
            let com = g.kernel(
                &format!("mis_commit[{it}][{r}]"),
                &sources,
                mis::commit_kernel(),
            );
            com.cover(n, 256).work_units(n as f64);
            match &prev_kernel {
                None => {
                    // First round of the iteration: wait for this
                    // iteration's pulls. The adjacency pulls are ordered
                    // transitively for it > 0 but need explicit edges on
                    // the first iteration.
                    sel.succeed_all(&[&pull_pri, &pull_st]);
                    if it == 0 {
                        sel.succeed_all(&[&pull_off, &pull_nbr]);
                    }
                }
                Some(p) => {
                    sel.succeed(p);
                }
            }
            sel.precede(&com);
            prev_kernel = Some(com);
        }

        // 4) D2H push of the decided states.
        let push_st = g.push(&format!("push_st[{it}]"), &pull_st, &h_st);
        push_st.succeed(prev_kernel.as_ref().expect("rounds >= 1"));

        // 5) CPU (sequential): partition into windows.
        let windows: Arc<Mutex<Vec<Vec<u32>>>> = Arc::new(Mutex::new(Vec::new()));
        let partition = g.host(&format!("partition[{it}]"), {
            let (db, h_st, windows) = (Arc::clone(&db), h_st.clone(), Arc::clone(&windows));
            let cap = cfg.window_cap;
            move || {
                let states = h_st.to_vec();
                *windows.lock() = partition_windows(&db.read(), &states, cap);
            }
        });
        push_st.precede(&partition);

        // 6) CPU (parallel): per-window bipartite matching. Matcher m
        // handles windows m, m+M, m+2M, ...
        let moves: Arc<Mutex<Vec<(u32, u32, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut match_tasks = Vec::with_capacity(cfg.matchers);
        for m in 0..cfg.matchers.max(1) {
            let t = g.host(&format!("match[{it}][{m}]"), {
                let (db, windows, moves) = (
                    Arc::clone(&db),
                    Arc::clone(&windows),
                    Arc::clone(&moves),
                );
                let stride = cfg.matchers.max(1);
                move || {
                    let windows = windows.lock().clone();
                    let db = db.read();
                    let mut local_moves = Vec::new();
                    for w in windows.iter().skip(m).step_by(stride) {
                        // Slots are the window cells' own current sites.
                        let slots: Vec<(u32, u32)> = w
                            .iter()
                            .map(|&c| (db.cells[c as usize].x, db.cells[c as usize].y))
                            .collect();
                        let cost: Vec<Vec<u64>> = w
                            .iter()
                            .map(|&c| {
                                slots
                                    .iter()
                                    .map(|&(x, y)| db.cell_cost_at(c, x, y))
                                    .collect()
                            })
                            .collect();
                        let (assignment, _) = hungarian(&cost);
                        for (ci, &cell) in w.iter().enumerate() {
                            let (x, y) = slots[assignment[ci]];
                            local_moves.push((cell, x, y));
                        }
                    }
                    moves.lock().extend(local_moves);
                }
            });
            partition.precede(&t);
            match_tasks.push(t);
        }

        // 7) CPU: apply the permutations and record HPWL.
        let apply = g.host(&format!("apply[{it}]"), {
            let (db, moves, hpwl_trace) =
                (Arc::clone(&db), Arc::clone(&moves), Arc::clone(&hpwl_trace));
            move || {
                let mut db = db.write();
                for &(cell, x, y) in moves.lock().iter() {
                    db.cells[cell as usize].x = x;
                    db.cells[cell as usize].y = y;
                }
                moves.lock().clear();
                let hpwl = db.total_hpwl();
                hpwl_trace.lock().push(hpwl);
            }
        });
        for t in &match_tasks {
            t.precede(&apply);
        }
        prev_apply = Some(apply);
    }

    (
        g,
        PlaceRun {
            db,
            hpwl_trace,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::PlacementConfig;
    use hf_core::TaskKind;

    #[test]
    fn graph_has_fig8_structure() {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 200,
            num_nets: 250,
            ..Default::default()
        });
        let cfg = GraphConfig {
            iterations: 2,
            matchers: 3,
            mis_rounds: 5,
            ..Default::default()
        };
        let (g, _run) = build_placement_graph(db, cfg);
        let info = g.info().unwrap();
        // 2 adjacency pulls + per-iter (1 prepare + 2 pulls + 2*5 kernels
        // + 1 push + 1 partition + 3 matchers + 1 apply) = 2 + 2*19.
        assert_eq!(info.num_tasks(), 2 + 2 * 19);
        assert_eq!(info.count_kind(TaskKind::Kernel), 2 * 10);
        assert_eq!(info.count_kind(TaskKind::Pull), 2 + 2 * 2);
        assert_eq!(info.count_kind(TaskKind::Push), 2);
        // prepare[1] depends on apply[0]: iterations are chained.
        let p1 = info.nodes.iter().position(|n| n.name == "prepare[1]").unwrap();
        assert_eq!(info.nodes[p1].num_deps, 1);
    }

    #[test]
    fn single_iteration_runs_and_preserves_legality() {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 300,
            num_nets: 350,
            ..Default::default()
        });
        let before = db.total_hpwl();
        let cfg = GraphConfig {
            iterations: 1,
            ..Default::default()
        };
        let (g, run) = build_placement_graph(db, cfg);
        let ex = hf_core::Executor::new(2, 1);
        ex.run(&g).wait().unwrap();
        let db = run.db.read();
        db.check_legal().unwrap();
        let trace = run.hpwl_trace.lock();
        assert_eq!(trace.len(), 1);
        assert!(trace[0] <= before, "HPWL increased: {} -> {}", before, trace[0]);
    }
}
