//! Schedule-validity tests over the traced simulator: every simulated
//! schedule must itself be a legal schedule.

use hf_core::data::HostVec;
use hf_core::placement::PlacementPolicy;
use hf_core::Heteroflow;
use hf_gpu::SimDuration;
use hf_sim::{simulate_traced, Machine};

fn mixed_graph(lanes: usize) -> hf_core::GraphInfo {
    let g = Heteroflow::new("mixed");
    for lane in 0..lanes {
        let d: HostVec<u32> = HostVec::from_vec(vec![0; 1024]);
        let h = g.host(&format!("h{lane}"), || {});
        let p = g.pull(&format!("p{lane}"), &d);
        let k = g.kernel(&format!("k{lane}"), &[&p], |_, _| {});
        k.cover(1024, 128).work_units(5e5);
        let s = g.push(&format!("s{lane}"), &p, &d);
        h.precede(&p);
        p.precede(&k);
        k.precede(&s);
    }
    g.info().expect("acyclic")
}

#[test]
fn schedule_respects_dependencies_and_devices() {
    let info = mixed_graph(6);
    for (cores, gpus) in [(1usize, 1u32), (2, 2), (8, 4)] {
        let (result, spans) = simulate_traced(
            &info,
            &Machine::new(cores, gpus),
            PlacementPolicy::BalancedLoad,
            |_| SimDuration::from_micros(100),
        )
        .expect("simulates");

        assert_eq!(spans.len(), info.nodes.len());

        // 1) Every dependency edge: successor starts at/after predecessor
        // finishes.
        let mut span_of = vec![None; info.nodes.len()];
        for s in &spans {
            span_of[s.node] = Some((s.start_ns, s.finish_ns));
        }
        for (u, n) in info.nodes.iter().enumerate() {
            let (_, uf) = span_of[u].expect("scheduled");
            for &v in &n.successors {
                let (vs, _) = span_of[v].expect("scheduled");
                assert!(
                    vs >= uf,
                    "({cores},{gpus}): edge {u}->{v} violated: {vs} < {uf}"
                );
            }
        }

        // 2) Device exclusivity: ops on the same GPU never overlap.
        for d in 0..gpus {
            let mut ops: Vec<(u64, u64)> = spans
                .iter()
                .filter(|s| s.device == Some(d))
                .map(|s| (s.start_ns, s.finish_ns))
                .collect();
            ops.sort_unstable();
            for w in ops.windows(2) {
                assert!(
                    w[1].0 >= w[0].1,
                    "({cores},{gpus}): device {d} ops overlap: {w:?}"
                );
            }
        }

        // 3) Makespan equals the latest finish.
        let last = spans.iter().map(|s| s.finish_ns).max().expect("non-empty");
        assert_eq!(result.makespan().as_nanos(), last);
    }
}

#[test]
fn spans_serialize_for_gantt_export() {
    let info = mixed_graph(2);
    let (_, spans) = simulate_traced(
        &info,
        &Machine::new(2, 1),
        PlacementPolicy::BalancedLoad,
        |_| SimDuration::from_micros(10),
    )
    .expect("simulates");
    let json = serde_json::to_string(&spans).expect("serializable");
    assert!(json.contains("\"start_ns\""));
    assert!(json.contains("k0"));
}
