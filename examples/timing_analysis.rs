//! VLSI timing analysis and correlation — the paper's first application
//! (§IV-A, Fig 5).
//!
//! Synthesizes a netcard-like circuit, builds the multi-view hybrid
//! CPU-GPU correlation task graph (per view: dataset generation on CPU →
//! pulls → logistic-regression kernel on GPU → push → statistics on CPU;
//! a final synchronization task correlates the per-view models), runs it
//! on a Heteroflow executor, and prints the report.
//!
//! Run: `cargo run --release --example timing_analysis -- [views] [gates]`

use heteroflow::prelude::*;
use heteroflow::timing::correlation::{build_correlation_graph, CorrelationConfig};
use heteroflow::timing::views::make_views;
use heteroflow::timing::{Circuit, CircuitConfig};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let views: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let gates: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);

    println!("synthesizing {gates}-gate circuit ...");
    let circuit = Arc::new(Circuit::synthesize(&CircuitConfig {
        num_gates: gates,
        ..Default::default()
    }));
    println!(
        "circuit: {} gates, {} nets, depth {}",
        circuit.num_gates(),
        circuit.num_edges(),
        circuit.depth()
    );

    let vs = make_views(views, 0.4);
    let cfg = CorrelationConfig {
        paths_per_view: 128,
        epochs: 40,
        ..Default::default()
    };
    let built = build_correlation_graph(Arc::clone(&circuit), &vs, cfg);
    let info = built.graph.info().expect("acyclic");
    println!(
        "task graph: {} tasks, {} dependencies, critical path {} tasks",
        info.num_tasks(),
        info.num_edges(),
        info.critical_path_len()
    );

    let executor = Executor::new(4, 2);
    let t0 = std::time::Instant::now();
    executor.run(&built.graph).wait().expect("correlation graph runs");
    let elapsed = t0.elapsed();

    let report = built.report.lock().clone();
    println!("\n=== correlation report ({views} views, {elapsed:.2?}) ===");
    for (vi, (w, acc)) in report.weights.iter().zip(&report.accuracy).enumerate() {
        println!(
            "view {vi:>3} [{}]: accuracy {:.3}, weights {:?}",
            vs[vi].name(),
            acc,
            w.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
        );
    }
    println!(
        "mean pairwise model correlation: {:.3} ({} pairs)",
        report.mean_correlation,
        report.pairwise.len()
    );

    // Dump the 2-view version of the graph — the paper's Fig 5.
    let two = build_correlation_graph(circuit, &vs[..2.min(vs.len())], cfg);
    println!("\nFig 5 task graph (2 views) in DOT:\n{}", two.graph.dump());
}
