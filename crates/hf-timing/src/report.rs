//! Human-readable timing reports — the `report_timing` output an STA
//! tool presents to designers (OpenTimer-style path tables).

use crate::cppr::ClockTree;
use crate::netlist::Circuit;
use crate::paths::{k_critical_paths, TimingPath};
use crate::sta::run_sta;
use crate::views::View;
use std::fmt::Write as _;

/// Options for [`report_timing`].
#[derive(Debug, Clone, Copy)]
pub struct ReportConfig {
    /// Paths to report.
    pub num_paths: usize,
    /// Apply CPPR credits (requires a clock tree segment delay).
    pub cppr: Option<f32>,
    /// Print per-gate arrival breakdown for each path.
    pub expand_paths: bool,
}

impl Default for ReportConfig {
    fn default() -> Self {
        Self {
            num_paths: 5,
            cppr: Some(0.04),
            expand_paths: true,
        }
    }
}

/// Renders the top-k critical-path report for one view.
pub fn report_timing(c: &Circuit, view: &View, cfg: &ReportConfig) -> String {
    let sta = run_sta(c, view);
    let mut paths = k_critical_paths(c, view, cfg.num_paths);
    let credits: Vec<f32> = match cfg.cppr {
        Some(seg) => {
            let tree = ClockTree::build(c, seg);
            crate::cppr::apply_cppr(&mut paths, &tree, view)
        }
        None => vec![0.0; paths.len()],
    };

    let mut out = String::new();
    let _ = writeln!(out, "Timing report — view {}", view.name());
    let _ = writeln!(
        out,
        "circuit: {} gates / {} nets / depth {}   clock {:.4} ns",
        c.num_gates(),
        c.num_edges(),
        c.depth(),
        view.mode.clock_period
    );
    let _ = writeln!(
        out,
        "WNS {:.4} ns   TNS {:.4} ns   ({} endpoints)",
        sta.wns,
        sta.tns,
        c.primary_outputs.len()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>4} {:>10} {:>10} {:>10} {:>7}  endpoint",
        "#", "delay", "cppr", "slack", "gates"
    );
    for (i, (p, credit)) in paths.iter().zip(&credits).enumerate() {
        let endpoint = p.gates.last().expect("non-empty path");
        let _ = writeln!(
            out,
            "{:>4} {:>10.4} {:>10.4} {:>10.4} {:>7}  G{}{}",
            i + 1,
            p.delay,
            credit,
            p.slack,
            p.depth(),
            endpoint,
            if p.slack < 0.0 { "  (VIOLATED)" } else { "" }
        );
        if cfg.expand_paths {
            let _ = writeln!(out, "{}", expand_path(c, view, p));
        }
    }
    out
}

/// Per-gate breakdown of one path (point / incr / arrival columns).
fn expand_path(c: &Circuit, view: &View, p: &TimingPath) -> String {
    let mut out = String::new();
    let mut at = 0.0f32;
    let _ = writeln!(out, "       {:>12} {:>10} {:>10}", "point", "incr", "arrival");
    for &g in &p.gates {
        let d = crate::sta::gate_delay(c, g as usize, view);
        at += d;
        let _ = writeln!(
            out,
            "       {:>12} {:>10.4} {:>10.4}",
            format!("G{g} ({})", kind_tag(c, g)),
            d,
            at
        );
    }
    out
}

fn kind_tag(c: &Circuit, g: u32) -> &'static str {
    use crate::netlist::GateKind::*;
    match c.gates[g as usize].kind {
        Input => "PI",
        Output => "PO",
        Nand => "nand",
        Nor => "nor",
        Inv => "inv",
        Buf => "buf",
        And => "and",
        Or => "or",
        Xor => "xor",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitConfig;
    use crate::views::make_views;

    fn circuit() -> Circuit {
        Circuit::synthesize(&CircuitConfig {
            num_gates: 400,
            ..Default::default()
        })
    }

    #[test]
    fn report_contains_paths_and_summary() {
        let c = circuit();
        let v = &make_views(1, 0.5)[0];
        let r = report_timing(&c, v, &ReportConfig::default());
        assert!(r.contains("Timing report"));
        assert!(r.contains("WNS"));
        assert!(r.contains("   1 ")); // first path row
        assert!(r.contains("arrival")); // expanded breakdown
    }

    #[test]
    fn violations_are_flagged_under_tight_clock() {
        let c = circuit();
        let v = &make_views(1, 0.01)[0];
        let r = report_timing(
            &c,
            v,
            &ReportConfig {
                num_paths: 3,
                cppr: None,
                expand_paths: false,
            },
        );
        assert!(r.contains("(VIOLATED)"));
        assert!(!r.contains("arrival"), "expansion disabled");
    }

    #[test]
    fn expanded_arrival_matches_path_delay() {
        let c = circuit();
        let v = &make_views(1, 0.5)[0];
        let paths = k_critical_paths(&c, v, 1);
        let expansion = expand_path(&c, v, &paths[0]);
        let last_arrival: f32 = expansion
            .lines()
            .last()
            .and_then(|l| l.split_whitespace().last())
            .and_then(|s| s.parse().ok())
            .expect("numeric arrival column");
        assert!((last_arrival - paths[0].delay).abs() < 1e-3);
    }
}
