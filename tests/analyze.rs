//! Integration tests for the graph static analyzer: seeded defects are
//! flagged with stable HF0xx codes, realistic clean graphs lint clean,
//! the executor's lint policy gates dispatch, and random fully-chained
//! DAGs never produce race findings.

use heteroflow::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Two pushes of the same buffer with no ordering between them: HF002.
#[test]
fn seeded_race_is_flagged_hf002() {
    let g = Heteroflow::new("race");
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let p = g.pull("p", &x);
    let k = g.kernel("k", &[&p], |_, _| {});
    let s1 = g.push("s1", &p, &x);
    let s2 = g.push("s2", &p, &x);
    p.precede(&k);
    k.precede(&s1);
    k.precede(&s2);
    let report = g.analyze();
    let races: Vec<_> = report.with_code("HF002").collect();
    assert_eq!(races.len(), 1, "expected one race: {}", report.render_text());
    assert_eq!(races[0].severity, Severity::Error);
    assert!(races[0].tasks.contains(&"s1".to_string()));
    assert!(races[0].tasks.contains(&"s2".to_string()));
}

/// A kernel with no dependency path from its source pull: HF003 — the
/// static mirror of the runtime `SourceNotPulled` error.
#[test]
fn seeded_missing_pull_dependency_is_flagged_hf003() {
    let g = Heteroflow::new("nopull");
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let p = g.pull("p", &x);
    let k = g.kernel("k", &[&p], |_, _| {});
    let s = g.push("s", &p, &x);
    // User forgot p.precede(&k); only kernel -> push is ordered.
    k.precede(&s);
    p.precede(&s);
    let report = g.analyze();
    assert!(report.has_errors());
    let missing: Vec<_> = report.with_code("HF003").collect();
    assert!(
        missing.iter().any(|d| d.tasks.contains(&"k".to_string())),
        "kernel not flagged: {}",
        report.render_text()
    );
}

/// A pull whose device data no kernel or push ever consumes: HF005.
#[test]
fn seeded_dead_pull_is_flagged_hf005() {
    let g = Heteroflow::new("dead");
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let y: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let p = g.pull("p", &x);
    let k = g.kernel("k", &[&p], |_, _| {});
    let s = g.push("s", &p, &x);
    p.precede(&k);
    k.precede(&s);
    g.pull("dead_pull", &y); // never consumed
    let report = g.analyze();
    let dead: Vec<_> = report.with_code("HF005").collect();
    assert_eq!(dead.len(), 1, "got: {}", report.render_text());
    assert_eq!(dead[0].severity, Severity::Warning);
    assert!(dead[0].tasks.contains(&"dead_pull".to_string()));
    // Warnings are not errors: the graph still dispatches under Deny.
    let ex = Executor::builder(2, 1).lint_policy(LintPolicy::Deny).build();
    ex.run(&g).wait().unwrap();
}

/// Declared host-task access (`reads`/`writes`) participates in race
/// detection against transfer tasks.
#[test]
fn declared_host_writer_races_with_unordered_pull() {
    let g = Heteroflow::new("hostrace");
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let h = g.host("h", {
        let x = x.clone();
        move || x.write()[0] = 1
    });
    h.writes(&x);
    let p = g.pull("p", &x);
    let k = g.kernel("k", &[&p], |_, _| {});
    p.precede(&k);
    // No ordering between h and p: concurrent write/read of `x`.
    let report = g.analyze();
    let races: Vec<_> = report.with_code("HF002").collect();
    assert_eq!(races.len(), 1, "got: {}", report.render_text());
    // Adding the missing edge clears the finding.
    h.precede(&p);
    assert!(
        g.analyze().with_code("HF002").next().is_none(),
        "ordered access still flagged"
    );
}

/// The full saxpy graph of the paper's Listing 1 has zero findings.
#[test]
fn saxpy_shape_lints_clean() {
    let g = Heteroflow::new("saxpy");
    let x: HostVec<i32> = HostVec::new();
    let y: HostVec<i32> = HostVec::new();
    let host_x = g.host("host_x", {
        let x = x.clone();
        move || x.write().resize(64, 1)
    });
    host_x.writes(&x);
    let host_y = g.host("host_y", {
        let y = y.clone();
        move || y.write().resize(64, 2)
    });
    host_y.writes(&y);
    let pull_x = g.pull("pull_x", &x);
    let pull_y = g.pull("pull_y", &y);
    let kernel = g.kernel("saxpy", &[&pull_x, &pull_y], |_, _| {});
    let push_x = g.push("push_x", &pull_x, &x);
    let push_y = g.push("push_y", &pull_y, &y);
    host_x.precede(&pull_x);
    host_y.precede(&pull_y);
    kernel.succeed_all(&[&pull_x, &pull_y]);
    kernel.precede_all(&[&push_x, &push_y]);
    let report = g.analyze();
    assert!(report.is_clean(), "saxpy not clean:\n{}", report.render_text());
}

/// `LintPolicy::Deny` turns an Error-severity graph into `LintRejected`
/// before any task body runs.
#[test]
fn deny_policy_rejects_before_dispatch() {
    let g = Heteroflow::new("deny");
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let h = g.host("h", {
        let ran = Arc::clone(&ran);
        move || ran.store(true, std::sync::atomic::Ordering::SeqCst)
    });
    let p = g.pull("p", &x);
    let k = g.kernel("k", &[&p], |_, _| {});
    h.precede(&p);
    p.precede(&k);
    // Seed a race: two unordered pushes of the same buffer.
    let s1 = g.push("s1", &p, &x);
    let s2 = g.push("s2", &p, &x);
    k.precede(&s1);
    k.precede(&s2);

    let ex = Executor::builder(2, 1).lint_policy(LintPolicy::Deny).build();
    let err = ex.run(&g).wait().unwrap_err();
    match &err {
        HfError::LintRejected { graph, diagnostics } => {
            assert_eq!(graph, "deny");
            assert!(diagnostics.iter().any(|d| d.starts_with("HF002")), "{diagnostics:?}");
        }
        other => panic!("expected LintRejected, got {other:?}"),
    }
    assert!(
        !ran.load(std::sync::atomic::Ordering::SeqCst),
        "host task ran despite lint rejection"
    );

    // The same graph passes with the default Warn policy.
    let warn = Executor::new(2, 1);
    warn.run(&g).wait().unwrap();
}

/// `LintPolicy::Off` runs even Error-severity graphs (the pre-analyzer
/// behaviour; the race is on device data the test never reads back).
#[test]
fn off_policy_never_analyzes() {
    let g = Heteroflow::new("off");
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let p = g.pull("p", &x);
    let k = g.kernel("k", &[&p], |_, _| {});
    let s1 = g.push("s1", &p, &x);
    let s2 = g.push("s2", &p, &x);
    p.precede(&k);
    k.precede(&s1);
    k.precede(&s2);
    let ex = Executor::builder(2, 1).lint_policy(LintPolicy::Off).build();
    ex.run(&g).wait().unwrap();
}

/// Under `Warn` with an active lifecycle observer, findings surface as
/// `Lint` lifecycle events right after `RunStart`.
#[test]
fn warn_policy_emits_lint_lifecycle_events() {
    struct Capture(std::sync::Mutex<Vec<(LifecyclePhase, bool, Option<String>)>>);
    impl heteroflow::core::ExecutorObserver for Capture {
        fn on_task_begin(&self, _: &heteroflow::core::TaskMeta<'_>) {}
        fn on_task_end(&self, _: &heteroflow::core::TaskMeta<'_>) {}
        fn on_lifecycle(&self, ev: &LifecycleEvent) {
            self.0.lock().unwrap().push((
                ev.phase,
                ev.ok,
                ev.detail.as_ref().map(|d| d.to_string()),
            ));
        }
    }

    let g = Heteroflow::new("warned");
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let p = g.pull("p", &x);
    let k = g.kernel("k", &[&p], |_, _| {});
    let s1 = g.push("s1", &p, &x);
    let s2 = g.push("s2", &p, &x);
    p.precede(&k);
    k.precede(&s1);
    k.precede(&s2);

    let cap = Arc::new(Capture(std::sync::Mutex::new(Vec::new())));
    let ex = Executor::builder(2, 1)
        .observer(Arc::clone(&cap) as Arc<dyn heteroflow::core::ExecutorObserver>)
        .build(); // default policy: Warn
    ex.run(&g).wait().unwrap();

    let events = cap.0.lock().unwrap().clone();
    let start = events
        .iter()
        .position(|(p, _, _)| *p == LifecyclePhase::RunStart)
        .expect("no RunStart");
    let lints: Vec<_> = events
        .iter()
        .enumerate()
        .filter(|(_, (p, _, _))| *p == LifecyclePhase::Lint)
        .collect();
    assert!(!lints.is_empty(), "no Lint events: {events:?}");
    for (i, (_, ok, detail)) in &lints {
        assert!(*i > start, "Lint before RunStart");
        let detail = detail.as_ref().expect("Lint event without detail");
        if detail.starts_with("HF002") {
            assert!(!ok, "Error-severity finding marked ok");
        }
    }
}

/// JSON rendering of a report is parseable and carries the codes.
#[test]
fn report_json_round_trips() {
    let g = Heteroflow::new("json");
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 8]);
    g.pull("dead", &x);
    let report = g.analyze();
    let v: serde_json::Value = serde_json::from_str(&report.to_json()).expect("valid json");
    assert_eq!(v.get("graph").and_then(|g| g.as_str()), Some("json"));
    let diags = v
        .get("diagnostics")
        .and_then(|d| d.as_array())
        .expect("diagnostics array");
    assert!(diags
        .iter()
        .any(|d| d.get("code").and_then(|c| c.as_str()) == Some("HF005")));
}

/// Builds a random DAG over alternating pull/kernel/push stages where
/// every consecutive pair is chained — fully ordered graphs must never
/// produce race findings.
fn chained_graph(n: usize) -> (Heteroflow, HostVec<i32>) {
    let g = Heteroflow::new("chained");
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 16]);
    let p = g.pull("p0", &x);
    let mut prev = p.as_task();
    for i in 0..n {
        match i % 3 {
            0 => {
                let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
                prev.precede(&k);
                prev = k.as_task();
            }
            1 => {
                let s = g.push(&format!("s{i}"), &p, &x);
                prev.precede(&s);
                prev = s.as_task();
            }
            _ => {
                let h = g.host(&format!("h{i}"), || {});
                h.writes(&x);
                prev.precede(&h);
                prev = h.as_task();
            }
        }
    }
    (g, x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fully chained graph — every consecutive pair of buffer-touching
    /// tasks ordered by an edge — never reports HF002, whatever the mix
    /// of kernels, pushes, and declared host writers.
    #[test]
    fn fully_chained_dags_never_report_races(n in 1usize..40) {
        let (g, _x) = chained_graph(n);
        let report = g.analyze();
        prop_assert!(
            report.with_code("HF002").next().is_none(),
            "chained graph reported a race:\n{}",
            report.render_text()
        );
    }

    /// Random extra forward edges added on top of the chain keep it both
    /// acyclic and race-free (extra ordering can never create a race).
    #[test]
    fn extra_forward_edges_preserve_race_freedom(
        n in 3usize..24,
        seed in proptest::collection::vec(any::<u8>(), 8..32),
    ) {
        let g = Heteroflow::new("extra");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 16]);
        let p = g.pull("p", &x);
        let mut tasks: Vec<TaskRef> = vec![p.as_task()];
        for i in 0..n {
            let t: TaskRef = if i % 2 == 0 {
                g.kernel(&format!("k{i}"), &[&p], |_, _| {}).as_task()
            } else {
                g.push(&format!("s{i}"), &p, &x).as_task()
            };
            tasks.last().unwrap().precede(&t);
            tasks.push(t);
        }
        let mut z = 0usize;
        for i in 0..tasks.len() {
            for j in (i + 1)..tasks.len() {
                let byte = seed[z % seed.len()];
                z += 1;
                if byte % 4 == 0 {
                    tasks[i].precede(&tasks[j]);
                }
            }
        }
        let report = g.analyze();
        prop_assert!(report.with_code("HF001").next().is_none(), "cycle in forward DAG");
        prop_assert!(
            report.with_code("HF002").next().is_none(),
            "chained graph reported a race:\n{}",
            report.render_text()
        );
    }
}
