//! Stateful host-side data binding for pull and push tasks.
//!
//! The paper binds pull/push tasks to host memory through `std::span`
//! captured in a "stateful tuple" (Listings 3–6): the span is *re-formed at
//! execution time*, so a host task that resizes the vector beforehand is
//! seen by the pull task. Rust cannot alias user memory across threads
//! safely, so the library provides [`HostVec<T>`] — a shared, lockable
//! vector — as the binding endpoint. The stateful property is identical:
//! pull reads the vector's *current* contents when the copy executes, and
//! push writes back into the vector at execution time.

use hf_gpu::plain::{self, Plain};
use parking_lot::RwLock;
use std::sync::Arc;

/// A shared host vector bindable to pull and push tasks.
///
/// Clones share the same storage (`Arc` inside). Host tasks mutate it
/// through [`HostVec::write`]; pull tasks snapshot its bytes when they
/// execute; push tasks overwrite it when they execute.
///
/// ```
/// use hf_core::data::HostVec;
/// let x: HostVec<i32> = HostVec::new();
/// x.write().resize(4, 7);
/// assert_eq!(x.read().as_slice(), &[7, 7, 7, 7]);
/// ```
pub struct HostVec<T> {
    inner: Arc<RwLock<Vec<T>>>,
}

impl<T> Clone for HostVec<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for HostVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for HostVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("HostVec").field(&*self.inner.read()).finish()
    }
}

impl<T> HostVec<T> {
    /// Creates an empty shared vector.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(RwLock::new(Vec::new())),
        }
    }

    /// Creates from existing contents.
    pub fn from_vec(v: Vec<T>) -> Self {
        Self {
            inner: Arc::new(RwLock::new(v)),
        }
    }

    /// Read guard over the contents.
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, Vec<T>> {
        self.inner.read()
    }

    /// Write guard over the contents.
    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, Vec<T>> {
        self.inner.write()
    }

    /// Current element count.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Extracts the contents, leaving the shared vector empty.
    pub fn take(&self) -> Vec<T> {
        std::mem::take(&mut *self.inner.write())
    }
}

impl<T: Clone> HostVec<T> {
    /// Clones the contents out.
    pub fn to_vec(&self) -> Vec<T> {
        self.inner.read().clone()
    }
}

impl<T> From<Vec<T>> for HostVec<T> {
    fn from(v: Vec<T>) -> Self {
        Self::from_vec(v)
    }
}

/// Anything a pull task can read host bytes from at execution time.
pub trait HostSource: Send + Sync + 'static {
    /// Snapshot of the current bytes (called when the H2D copy executes —
    /// this is what makes pull tasks stateful).
    fn fetch_bytes(&self) -> Vec<u8>;
    /// Current byte length (used to size the device allocation).
    fn byte_len(&self) -> usize;
}

/// Anything a push task can write device bytes back into at execution
/// time.
pub trait HostSink: Send + Sync + 'static {
    /// Overwrites the host storage with the device bytes.
    fn store_bytes(&self, bytes: &[u8]);
}

impl<T: Plain> HostSource for HostVec<T> {
    fn fetch_bytes(&self) -> Vec<u8> {
        plain::as_bytes(self.inner.read().as_slice()).to_vec()
    }

    fn byte_len(&self) -> usize {
        self.inner.read().len() * std::mem::size_of::<T>()
    }
}

impl<T: Plain> HostSink for HostVec<T> {
    fn store_bytes(&self, bytes: &[u8]) {
        let mut guard = self.inner.write();
        let elems: &[T] = plain::from_bytes(&bytes[..bytes.len() - bytes.len() % std::mem::size_of::<T>()]);
        guard.clear();
        guard.extend_from_slice(elems);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateful_resize_is_visible_to_source() {
        let v: HostVec<i32> = HostVec::new();
        let src: &dyn HostSource = &v.clone();
        assert_eq!(src.byte_len(), 0);
        v.write().resize(3, 5);
        assert_eq!(src.byte_len(), 12);
        assert_eq!(src.fetch_bytes(), plain::as_bytes(&[5i32, 5, 5]).to_vec());
    }

    #[test]
    fn sink_overwrites_contents() {
        let v: HostVec<u32> = HostVec::from_vec(vec![1, 2, 3, 4, 5]);
        let sink: &dyn HostSink = &v.clone();
        sink.store_bytes(plain::as_bytes(&[9u32, 8]));
        assert_eq!(v.to_vec(), vec![9, 8]);
    }

    #[test]
    fn clones_share_storage() {
        let a: HostVec<f32> = HostVec::new();
        let b = a.clone();
        a.write().push(1.5);
        assert_eq!(b.to_vec(), vec![1.5]);
        assert_eq!(b.take(), vec![1.5]);
        assert!(a.is_empty());
    }
}
