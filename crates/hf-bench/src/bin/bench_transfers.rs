//! Data-movement fast-path benchmark: transfer elision on resubmitted
//! copy-heavy graphs, magazine-cache throughput vs a mutex-only buddy
//! pool, pool allocation latency percentiles, and trace evidence that a
//! chunked copy overlaps a kernel on the same device.
//!
//! Usage: `cargo run --release -p hf-bench --bin bench_transfers --
//! [--smoke] [--out BENCH_transfers.json]`

use hf_bench::cli::Args;
use hf_core::data::HostVec;
use hf_core::observer::{SpanCat, TraceCollector, Track};
use hf_core::{Executor, Heteroflow};
use hf_gpu::{BuddyAllocator, MemoryPool};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let out = args.get_str("out").unwrap_or("BENCH_transfers.json").to_string();

    let copy_heavy = copy_heavy_elision(smoke);
    let pool = pool_throughput(smoke);
    let overlap = chunked_overlap(smoke);

    let doc = json!({
        "bench": "transfers",
        "smoke": smoke,
        "copy_heavy": copy_heavy,
        "pool": pool,
        "overlap": overlap,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out, &text).expect("write report");
    println!("{text}");
    println!("\nwrote {out}");
}

/// Resubmits a copy-heavy graph (parallel pull -> push lanes) and
/// measures throughput plus the fraction of H2D copies elided after the
/// first submission establishes residency.
fn copy_heavy_elision(smoke: bool) -> serde_json::Value {
    let (lanes, n, resubmissions) = if smoke { (4, 1 << 14, 10) } else { (8, 1 << 18, 30) };
    let ex = Executor::new(4, 2);
    let g = Heteroflow::new("copy_heavy");
    let mut bufs = Vec::new();
    for lane in 0..lanes {
        let data: HostVec<i64> = HostVec::from_vec(vec![lane as i64; n]);
        let p = g.pull(&format!("pull{lane}"), &data);
        let s = g.push(&format!("push{lane}"), &p, &data);
        p.precede(&s);
        bufs.push(data);
    }

    let t0 = Instant::now();
    for _ in 0..resubmissions {
        ex.run(&g).wait().expect("copy-heavy graph runs");
    }
    let secs = t0.elapsed().as_secs_f64();

    let s = ex.stats().snapshot();
    let pull_execs = (lanes * resubmissions) as u64;
    let elided_ratio = s.transfers_elided as f64 / pull_execs as f64;
    json!({
        "lanes": lanes,
        "bytes_per_pull": n * 8,
        "resubmissions": resubmissions,
        "tasks_per_sec": s.tasks_executed as f64 / secs,
        "pull_executions": pull_execs,
        "transfers_elided": s.transfers_elided,
        "elided_ratio": elided_ratio,
        "bytes_h2d": s.bytes_h2d,
        "bytes_d2h": s.bytes_d2h,
    })
}

/// Same-size alloc/free storms from several threads: the magazine-fronted
/// device pool vs a plain mutex-guarded buddy allocator, plus latency
/// percentiles for the pool fast path.
fn pool_throughput(smoke: bool) -> serde_json::Value {
    let threads = 4usize;
    let iters = if smoke { 20_000 } else { 200_000 };
    let size = 4096usize;
    let capacity = 1usize << 26;

    // Magazine-fronted pool (the first free per class parks a block, so
    // every later alloc is a lock-free magazine hit).
    let pool = MemoryPool::new(0, capacity, 256);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..iters {
                    let p = pool.alloc(size).expect("alloc");
                    pool.free(p).expect("free");
                }
            });
        }
    });
    let magazine_secs = t0.elapsed().as_secs_f64();

    // Baseline: every alloc and free takes the buddy mutex.
    let buddy = parking_lot::Mutex::new(BuddyAllocator::new(capacity, 256));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..iters {
                    let off = buddy.lock().alloc(size).expect("alloc");
                    buddy.lock().free(off).expect("free");
                }
            });
        }
    });
    let mutex_secs = t0.elapsed().as_secs_f64();

    let ops = (threads * iters * 2) as f64;

    // Latency percentiles of the warm (magazine-hit) alloc path.
    let samples = if smoke { 20_000 } else { 100_000 };
    let mut nanos = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        let p = pool.alloc(size).expect("alloc");
        nanos.push(t.elapsed().as_nanos() as u64);
        pool.free(p).expect("free");
    }
    nanos.sort_unstable();
    let p50 = nanos[samples / 2];
    let p99 = nanos[samples * 99 / 100];

    let stats = pool.stats();
    json!({
        "threads": threads,
        "iters_per_thread": iters,
        "alloc_size": size,
        "magazine_ops_per_sec": ops / magazine_secs,
        "mutex_ops_per_sec": ops / mutex_secs,
        "speedup": mutex_secs / magazine_secs,
        "alloc_p50_ns": p50,
        "alloc_p99_ns": p99,
        "magazine_hits": stats.magazine_hits,
        "magazine_misses": stats.magazine_misses,
    })
}

/// Runs a two-lane graph — one big chunked pull, one independent kernel —
/// under the stitched tracer and reports whether a kernel span executed
/// inside the chunked copy's extent on the same device (pipelining
/// evidence). Retries a few times because the interleaving is a race the
/// scheduler usually, but not always, wins on the first attempt.
fn chunked_overlap(smoke: bool) -> serde_json::Value {
    let n = if smoke { 1 << 20 } else { 1 << 22 }; // f32 elements
    let chunk = 64 * 1024;
    let kn = if smoke { 1 << 15 } else { 1 << 17 };
    const ATTEMPTS: usize = 10;

    for attempt in 1..=ATTEMPTS {
        let trace = TraceCollector::shared();
        let ex = Executor::builder(2, 1)
            .copy_chunk_threshold(chunk)
            .copy_lanes(2)
            .tracer(Arc::clone(&trace))
            .build();

        let g = Heteroflow::new("overlap");
        let big: HostVec<f32> = HostVec::from_vec(vec![1.0; n]);
        g.pull("big_pull", &big);
        let small: HostVec<f32> = HostVec::from_vec(vec![2.0; kn]);
        let p = g.pull("small_pull", &small);
        let k = g.kernel("busy_kernel", &[&p], |cfg, args| {
            let v = args.slice_mut::<f32>(0).expect("arg");
            for t in cfg.threads() {
                if t < v.len() {
                    v[t] = v[t].sin().mul_add(1.5, 0.25);
                }
            }
        });
        k.cover(kn, 128);
        p.precede(&k);

        ex.run(&g).wait().expect("overlap graph runs");
        drop(ex);
        let spans = trace.spans();

        let chunks: Vec<_> = spans
            .iter()
            .filter(|s| {
                matches!(s.track, Track::Device(_))
                    && s.cat == SpanCat::Task
                    && s.name.contains("#c")
            })
            .collect();
        let kernel = spans
            .iter()
            .find(|s| s.cat == SpanCat::Task && s.name == "busy_kernel");
        if let (Some(k), false) = (kernel, chunks.is_empty()) {
            let first = chunks.iter().map(|c| c.start_us).min().unwrap();
            let last = chunks.iter().map(|c| c.end_us()).max().unwrap();
            let overlaps = k.start_us < last && first < k.end_us();
            if overlaps {
                return json!({
                    "observed": true,
                    "attempts": attempt,
                    "chunks": chunks.len(),
                    "chunk_extent_us": vec![first, last],
                    "kernel_span_us": vec![k.start_us, k.end_us()],
                });
            }
        }
    }
    json!({ "observed": false, "attempts": ATTEMPTS })
}
