//! Streaming epoch execution: resident sessions and the shared epoch
//! driver behind `run`/`run_n`/`run_until`.
//!
//! The paper's execution model submits one graph and waits
//! ("issuing a run on a graph returns immediately with a C++ future
//! object", §III-B). Serving-style workloads resubmit the *same* graph
//! for round after round of fresh host inputs; paying the submission
//! preamble each round — and, worse, leaving the devices idle between
//! the rounds — wastes exactly the concurrency the runtime exists to
//! extract. This module adds a first-class streaming mode:
//!
//! * [`crate::Executor::run_stream`] returns a [`Session`] that keeps
//!   the frozen snapshot, device placement, fusion plan, and device
//!   residency resident across epochs.
//! * [`Session::submit`] enqueues the next epoch and returns an
//!   [`EpochFuture`] immediately. Up to [`StreamConfig::depth`] epochs
//!   are in flight at once; `submit` applies backpressure beyond that.
//! * Epochs **pipeline**: epoch N+1's host tasks and H2D transfers (its
//!   *prologue*) start as soon as epoch N's prologue has drained, while
//!   epoch N's kernels still occupy the devices. Each epoch's *body*
//!   (kernels, pushes, and their descendants) is held behind an
//!   admission gate until the previous epoch completes, so per-epoch
//!   results are exactly those of sequential execution.
//! * Pull residency is **double-buffered**: epoch `e` owns ring slot
//!   `e % depth`, so epoch N+1's H2D chunks land in their own device
//!   buffers and never clobber data epoch N is still consuming.
//!
//! The sequential entry points (`run`, `run_n`, `run_until`) are thin
//! wrappers over the same machinery: [`run_driver`] chains one
//! single-round epoch topology per repetition through the
//! epoch-completion hook, so there is a single execution code path.
//!
//! ## Failure containment
//!
//! A failed or cancelled epoch resolves *alone*: its [`EpochFuture`]
//! reports the error, the stream keeps serving, and — after a device
//! loss — the session re-places subsequent epochs against the surviving
//! devices. A mid-epoch device failover replays within the epoch unless
//! a later epoch's input mutation has already been applied
//! ([`crate::topology::InputGuard`]), in which case the epoch fails
//! rather than replay pulls against superseded host data.

use crate::error::HfError;
use crate::executor::{ExecInner, Executor};
use crate::graph::{FrozenGraph, GraphShared, Heteroflow, PullState, TaskKind};
use crate::lifecycle::LifecyclePhase;
use crate::placement::Placement;
use crate::topology::{
    CancelHandle, Completion, EpochGate, FusionPlan, InputGuard, PrologueTrack, RunFuture,
    TopoExtras, Topology,
};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a streaming [`Session`].
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Maximum epochs in flight at once — and the size of the pull
    /// residency ring. [`Session::submit`] blocks (backpressure) while
    /// `depth` epochs are unfinished. Depth 2 (the default) double
    /// buffers: the next epoch's H2D transfers overlap the current
    /// epoch's kernels. Depth 1 serializes epochs (still resident — the
    /// submission preamble is paid once). Clamped to at least 1.
    pub depth: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self { depth: 2 }
    }
}

/// Future of one streaming epoch, returned by [`Session::submit`].
/// Shares the [`Completion`] core with `RunFuture`, so waiting,
/// deadline-bounded waiting, async `.await`, and cooperative
/// cancellation behave identically. Clones share the same epoch.
#[derive(Clone)]
pub struct EpochFuture {
    pub(crate) core: Completion,
}

impl EpochFuture {
    /// Blocks until the epoch finishes; returns its result.
    pub fn wait(&self) -> Result<(), HfError> {
        self.core.wait()
    }

    /// Blocks for at most `timeout`. Returns `None` when the deadline
    /// expired with the epoch still in flight (it keeps going — call
    /// `wait*` again or [`EpochFuture::cancel`]), otherwise the result.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<(), HfError>> {
        self.core.wait_timeout(timeout)
    }

    /// Requests cooperative cancellation of this epoch only: in-flight
    /// task bodies finish, everything not yet started is skipped, and
    /// the epoch completes with [`HfError::Cancelled`]. Later epochs of
    /// the stream are unaffected. Cancelling a finished epoch is a
    /// no-op.
    pub fn cancel(&self) {
        self.core.cancel();
    }

    /// True once the epoch has finished (success or error).
    pub fn is_done(&self) -> bool {
        self.core.is_done()
    }

    /// The owning stream's process-unique run id (`0` for
    /// immediately-ready futures, which never execute).
    pub fn run_id(&self) -> u64 {
        self.core.run_id()
    }

    /// The epoch index within the stream (`None` for immediately-ready
    /// error futures).
    pub fn epoch(&self) -> Option<u64> {
        self.core.epoch()
    }

    /// A detached, cloneable handle to this epoch's completion and
    /// cancellation state (a clone of the shared [`Completion`] core).
    pub fn handle(&self) -> CancelHandle {
        self.core.clone()
    }

    fn ready(result: Result<(), HfError>) -> Self {
        Self {
            core: Completion::ready(result),
        }
    }
}

impl std::fmt::Debug for EpochFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochFuture")
            .field("epoch", &self.core.epoch())
            .field("done", &self.is_done())
            .finish()
    }
}

impl std::future::Future for EpochFuture {
    type Output = Result<(), HfError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        std::pin::pin!(self.core.clone()).poll(cx)
    }
}

// ---------------------------------------------------------------------------
// Sequential driver: run / run_n / run_until over the epoch machinery.
// ---------------------------------------------------------------------------

/// One sequential submission: chains single-round epoch topologies until
/// the stopping predicate fires, then settles the promise and promotes
/// the next queued run of the graph.
struct SeqDriver {
    inner: Arc<ExecInner>,
    shared: Arc<GraphShared>,
    frozen: Arc<FrozenGraph>,
    label: Arc<str>,
    run_id: u64,
    /// The caller's stopping predicate (checked once before each epoch).
    predicate: Mutex<Box<dyn FnMut() -> bool + Send>>,
    /// Placement carried across epochs: a device failover inside one
    /// epoch re-places it, and the next epoch must not resurrect the
    /// lost device from the scheduling cache.
    placement: Mutex<Arc<Placement>>,
    fusion: Mutex<Arc<FusionPlan>>,
    core: Completion,
    /// Tenant attribution (fleet submissions); stamped onto each epoch
    /// topology and the run-level lifecycle events.
    tenant: Option<Arc<str>>,
    /// Retry-policy re-dispatches accumulated across the chained epochs,
    /// reported to `on_done` so a fleet can bill retry work.
    retries: AtomicU32,
    /// Completion callback (fleet accounting); fired exactly once, after
    /// the promise settles.
    on_done: Mutex<Option<DoneHook>>,
}

/// Completion callback of one driver submission: the run's result and
/// the retry-policy re-dispatches it consumed (for tenant billing).
pub(crate) type DoneHook = Box<dyn FnOnce(&Result<(), HfError>, u32) + Send>;

/// Submission context threaded by [`crate::Fleet`] through the driver:
/// a pre-allocated completion core (so a parked future exists *before*
/// admission), the owning tenant, and a completion callback.
#[derive(Default)]
pub(crate) struct DriverExtras {
    /// Pre-allocated completion core; `None` allocates one internally.
    pub(crate) core: Option<Completion>,
    /// Tenant attribution for lifecycle events and telemetry.
    pub(crate) tenant: Option<Arc<str>>,
    /// Invoked once when the submission settles (after the promise).
    pub(crate) on_done: Option<DoneHook>,
}

/// Drives `run_until` (and through it `run`/`run_n`): plans once, claims
/// the graph (or queues behind its active owner), then executes one
/// epoch topology per repetition. Non-blocking; returns the future.
pub(crate) fn run_driver(
    exec: &Executor,
    hf: &Heteroflow,
    stop: Box<dyn FnMut() -> bool + Send>,
) -> RunFuture {
    run_driver_ext(exec, hf, stop, DriverExtras::default())
}

/// [`run_driver`] with fleet submission context ([`DriverExtras`]).
/// Early failures (executor shut down, plan rejection) settle the
/// provided core and fire `on_done` before returning, so fleet
/// bookkeeping never leaks an in-flight slot.
pub(crate) fn run_driver_ext(
    exec: &Executor,
    hf: &Heteroflow,
    stop: Box<dyn FnMut() -> bool + Send>,
    extras: DriverExtras,
) -> RunFuture {
    let DriverExtras {
        core: pre_core,
        tenant,
        on_done,
    } = extras;
    let fail_early = |e: HfError, pre: Option<Completion>, od: Option<DoneHook>| {
        let result = Err(e);
        if let Some(cb) = od {
            cb(&result, 0);
        }
        match pre {
            Some(c) => {
                c.promise.complete(result);
                RunFuture { core: c }
            }
            None => RunFuture::ready(result),
        }
    };
    let inner = &exec.inner;
    if inner.done.load(Ordering::SeqCst) {
        return fail_early(HfError::ExecutorShutDown, pre_core, on_done);
    }
    let plan = match exec.plan_for(hf) {
        Ok(p) => p,
        Err(e) => return fail_early(e, pre_core, on_done),
    };
    let core = match pre_core {
        Some(c) => c,
        None => Completion::new(inner.run_seq.fetch_add(1, Ordering::Relaxed) + 1),
    };
    let run_id = core.run_id();
    let label: Arc<str> = Arc::from(plan.frozen.name());
    inner.emit_raw_run_lc(
        run_id,
        &label,
        LifecyclePhase::RunStart,
        true,
        None,
        None,
        tenant.as_ref(),
    );
    if let Some(report) = &plan.lint_report {
        inner.emit_lint_lc(run_id, &label, report);
    }
    // The driver holds one in-flight count for the whole submission (its
    // epoch topologies add their own), so `wait_for_all` observes the
    // gaps between chained epochs as busy, not idle.
    inner.num_topologies.fetch_add(1, Ordering::SeqCst);

    let driver = Arc::new(SeqDriver {
        inner: Arc::clone(inner),
        shared: Arc::clone(&hf.shared),
        frozen: plan.frozen,
        label,
        run_id,
        predicate: Mutex::new(stop),
        placement: Mutex::new(plan.placement),
        fusion: Mutex::new(plan.fusion),
        core: core.clone(),
        tenant,
        retries: AtomicU32::new(0),
        on_done: Mutex::new(on_done),
    });

    // Claim the graph, or queue a starter behind the active owner (the
    // paper's topology list, §III-C).
    let run_now = {
        let mut rs = hf.shared.run_state.lock();
        if rs.active {
            let d = Arc::clone(&driver);
            rs.queued.push_back(Box::new(move || d.step()));
            false
        } else {
            rs.active = true;
            true
        }
    };
    if run_now {
        driver.step();
    }
    RunFuture { core }
}

impl SeqDriver {
    /// Starts the next epoch, or finishes the run when cancelled / the
    /// predicate fired / the graph is empty. Recursion through
    /// `on_epoch_done` is bounded: a non-empty epoch finishes on a
    /// worker or engine thread, never synchronously inside `step`.
    fn step(self: &Arc<Self>) {
        if self.core.cancel_requested() {
            return self.finish(Err(HfError::Cancelled));
        }
        if (self.predicate.lock())() {
            return self.finish(Ok(()));
        }
        if self.frozen.nodes.is_empty() {
            return self.finish(Ok(()));
        }
        let placement = Arc::clone(&self.placement.lock());
        let fusion = Arc::clone(&self.fusion.lock());
        // Run-once predicate: one round per epoch topology (the first,
        // false call is consumed by `start_topology`'s pre-round check).
        let mut fired = false;
        let once = Box::new(move || std::mem::replace(&mut fired, true));
        let d = Arc::clone(self);
        let topo = Topology::new(
            Arc::clone(&self.frozen),
            self.run_id,
            placement,
            fusion,
            once,
            Arc::clone(&self.core.cancel),
            TopoExtras {
                on_finish: Some(Box::new(move |t: &Arc<Topology>| d.on_epoch_done(t))),
                tenant: self.tenant.clone(),
                ..Default::default()
            },
        );
        self.inner.registry.register(&topo);
        self.inner.num_topologies.fetch_add(1, Ordering::SeqCst);
        self.inner.start_topology(topo);
    }

    /// Epoch-completion hook: carries a failover's re-placement forward
    /// (the epoch-local fusion recompute in `end_round` never runs for
    /// single-round epochs), then chains the next epoch or finishes.
    fn on_epoch_done(self: &Arc<Self>, topo: &Arc<Topology>) {
        let r = topo.retries.load(Ordering::Relaxed);
        if r > 0 {
            self.retries.fetch_add(r, Ordering::Relaxed);
        }
        let p = topo.placement();
        {
            let mut cur = self.placement.lock();
            if !Arc::ptr_eq(&p, &cur) {
                let plan = FusionPlan::compute(&self.frozen, &p, self.inner.fusion);
                *self.fusion.lock() = Arc::new(plan);
                *cur = p;
            }
        }
        match topo.result() {
            Err(e) => self.finish(Err(e)),
            Ok(()) => self.step(),
        }
    }

    /// Emits `RunEnd` (the run's last lifecycle event), releases the
    /// graph claim, settles the promise, and drops the submission's
    /// in-flight hold. The claim is released *before* the promise
    /// settles: a waiter is free to mutate and resubmit the graph the
    /// instant `wait` returns, and a still-held claim would make its
    /// re-freeze fail with [`HfError::GraphBusy`]. Called exactly once
    /// per driver.
    fn finish(&self, result: Result<(), HfError>) {
        if matches!(result, Err(HfError::Cancelled)) {
            self.inner.stats.cancelled.incr();
        }
        self.inner.emit_raw_run_lc(
            self.run_id,
            &self.label,
            LifecyclePhase::RunEnd,
            result.is_ok(),
            result.as_ref().err(),
            None,
            self.tenant.as_ref(),
        );
        let next = {
            let mut rs = self.shared.run_state.lock();
            match rs.queued.pop_front() {
                Some(s) => Some(s),
                None => {
                    rs.active = false;
                    None
                }
            }
        };
        if let Some(starter) = next {
            starter();
        }
        // The done hook (the fleet's slot release) runs *before* the
        // promise settles: a submitter woken by the completion then finds
        // the in-flight slot already freed instead of contending with
        // this thread for the fleet state lock.
        let done_hook = self.on_done.lock().take();
        if let Some(cb) = done_hook {
            cb(&result, self.retries.load(Ordering::Relaxed));
        }
        self.core.promise.complete(result.clone());
        if self.inner.num_topologies.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.inner.idle_lock.lock();
            self.inner.idle_cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming session.
// ---------------------------------------------------------------------------

/// A resident streaming session on one graph, returned by
/// [`crate::Executor::run_stream`].
///
/// The session holds the frozen snapshot, placement, fusion plans, and a
/// `depth`-deep ring of device-residency slots for the graph's pull
/// tasks. [`Session::submit`] enqueues one epoch (one pass over the
/// graph) and returns an [`EpochFuture`]; epochs pipeline as described
/// in the [module docs](self). Dropping (or [`Session::close`]-ing) the
/// session drains in-flight epochs and releases the graph for other
/// submissions; while the session is open, `run`/`run_n` calls on the
/// same graph queue behind it.
pub struct Session {
    core: Arc<SessionCore>,
}

struct SessionCore {
    inner: Arc<ExecInner>,
    shared: Arc<GraphShared>,
    frozen: Arc<FrozenGraph>,
    label: Arc<str>,
    run_id: u64,
    depth: usize,
    /// True for body nodes (kernels, pushes, and their descendants) —
    /// the gated portion of each epoch.
    is_body: Vec<bool>,
    /// Body nodes with no body predecessor: the gate's inflated heads.
    gate_heads: Vec<usize>,
    gate_is_head: Vec<bool>,
    /// Complement of `is_body`, shared with every epoch's
    /// [`PrologueTrack`].
    is_prologue: Arc<Vec<bool>>,
    prologue_count: usize,
    /// Double-buffered pull residency: epoch `e` owns `rings[e % depth]`.
    rings: Vec<Arc<Vec<Mutex<PullState>>>>,
    /// Input generation: bumped by each applied submit-time mutator so a
    /// device failover can detect superseded host inputs.
    input_gen: Arc<AtomicU64>,
    state: Mutex<SessState>,
    cv: Condvar,
}

struct SessState {
    /// The session owns the graph's run claim.
    claimed: bool,
    /// `close` was called: no further submissions.
    closed: bool,
    /// `RunEnd` emitted and the claim released (close is idempotent).
    run_ended: bool,
    /// Next epoch index to hand out.
    next_epoch: u64,
    /// Epochs admitted (topology started); admission order is epoch
    /// order.
    admitted: u64,
    /// Contiguous epochs whose prologue has drained; the next epoch's
    /// input mutation must wait for this to reach `admitted`.
    prologue_done: u64,
    /// Contiguous completed-epoch watermark: epochs `0..completed_mark`
    /// have all finished. Gates open and ring slots recycle against it.
    completed_mark: u64,
    /// Finished epochs at or above the watermark.
    done_set: BTreeSet<u64>,
    /// Submitted epochs not yet finished (backpressure counter).
    inflight: usize,
    /// Submitted epochs not yet admitted.
    queue: VecDeque<PendingEpoch>,
    /// Admitted epochs whose body gate waits on the watermark.
    pending_gate: Vec<(u64, Arc<Topology>)>,
    /// Placement carried across epochs (failover re-placements stick).
    placement: Arc<Placement>,
    /// Body-masked fusion plan for the current placement (prologue→body
    /// chains must not bypass the gate).
    fusion: Arc<FusionPlan>,
    /// The session currently holds one executor in-flight count (taken
    /// when `inflight` 0→1, released when it drains to 0), so
    /// `wait_for_all` quiesces busy streams but ignores idle ones.
    holding: bool,
}

struct PendingEpoch {
    epoch: u64,
    mutator: Option<Box<dyn FnOnce() + Send>>,
    core: Completion,
}

impl Session {
    pub(crate) fn open(
        exec: &Executor,
        hf: &Heteroflow,
        cfg: StreamConfig,
    ) -> Result<Self, HfError> {
        let inner = &exec.inner;
        if inner.done.load(Ordering::SeqCst) {
            return Err(HfError::ExecutorShutDown);
        }
        let plan = exec.plan_for(hf)?;
        let frozen = plan.frozen;
        let n = frozen.nodes.len();
        let depth = cfg.depth.max(1);

        // Body = kernels and pushes plus everything downstream of one;
        // prologue = the rest (host tasks and pulls feeding the body).
        let mut is_body = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for (i, nd) in frozen.nodes.iter().enumerate() {
            if matches!(nd.work.kind(), TaskKind::Kernel | TaskKind::Push) && !is_body[i] {
                is_body[i] = true;
                stack.push(i);
            }
        }
        while let Some(v) = stack.pop() {
            for &s in &frozen.nodes[v].succ {
                if !is_body[s] {
                    is_body[s] = true;
                    stack.push(s);
                }
            }
        }
        let mut has_body_pred = vec![false; n];
        for (v, nd) in frozen.nodes.iter().enumerate() {
            if is_body[v] {
                for &s in &nd.succ {
                    has_body_pred[s] = true;
                }
            }
        }
        let gate_heads: Vec<usize> =
            (0..n).filter(|&i| is_body[i] && !has_body_pred[i]).collect();
        let mut gate_is_head = vec![false; n];
        for &h in &gate_heads {
            gate_is_head[h] = true;
        }
        let is_prologue: Vec<bool> = is_body.iter().map(|&b| !b).collect();
        let prologue_count = is_prologue.iter().filter(|&&p| p).count();

        // The steady-state fusion plan is masked to the body: a chain
        // from a prologue pull into a body kernel would dispatch the
        // kernel with the pull and bypass the epoch gate.
        let fusion = Arc::new(FusionPlan::compute_masked(
            &frozen,
            &plan.placement,
            inner.fusion,
            &is_body,
        ));

        let run_id = inner.run_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let label: Arc<str> = Arc::from(frozen.name());
        inner.emit_raw_run_lc(run_id, &label, LifecyclePhase::RunStart, true, None, None, None);
        if let Some(report) = &plan.lint_report {
            inner.emit_lint_lc(run_id, &label, report);
        }

        let rings: Vec<Arc<Vec<Mutex<PullState>>>> = (0..depth)
            .map(|_| {
                Arc::new(
                    (0..n)
                        .map(|_| Mutex::new(PullState::default()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();

        let core = Arc::new(SessionCore {
            inner: Arc::clone(inner),
            shared: Arc::clone(&hf.shared),
            frozen,
            label,
            run_id,
            depth,
            is_body,
            gate_heads,
            gate_is_head,
            is_prologue: Arc::new(is_prologue),
            prologue_count,
            rings,
            input_gen: Arc::new(AtomicU64::new(0)),
            state: Mutex::new(SessState {
                claimed: false,
                closed: false,
                run_ended: false,
                next_epoch: 0,
                admitted: 0,
                prologue_done: 0,
                completed_mark: 0,
                done_set: BTreeSet::new(),
                inflight: 0,
                queue: VecDeque::new(),
                pending_gate: Vec::new(),
                placement: plan.placement,
                fusion,
                holding: false,
            }),
            cv: Condvar::new(),
        });

        // Claim the graph now, or queue a starter behind its active
        // owner; submissions accepted meanwhile park in the queue.
        let claim_now = {
            let mut rs = hf.shared.run_state.lock();
            if rs.active {
                let c = Arc::clone(&core);
                rs.queued.push_back(Box::new(move || {
                    c.state.lock().claimed = true;
                    c.cv.notify_all();
                    c.pump();
                }));
                false
            } else {
                rs.active = true;
                true
            }
        };
        if claim_now {
            core.state.lock().claimed = true;
        }
        Ok(Session { core })
    }

    /// Enqueues the next epoch over the graph's *current* host inputs
    /// and returns its future immediately — unless `depth` epochs are
    /// already in flight, in which case this blocks until one finishes
    /// (backpressure). The epoch reads whatever the host sources hold
    /// when its transfers run; to mutate inputs between epochs race-free,
    /// use [`Session::submit_with`].
    pub fn submit(&self) -> EpochFuture {
        self.core.submit_inner(None)
    }

    /// [`Session::submit`] with an input mutator: `mutate` runs exactly
    /// once, after the *previous* epoch's host tasks and H2D transfers
    /// have drained and before this epoch's begin — the race-free window
    /// for writing the next round's inputs into the graph's host
    /// sources. The pipeline keeps flowing: the previous epoch's kernels
    /// and pushes are still executing when `mutate` runs.
    pub fn submit_with<F>(&self, mutate: F) -> EpochFuture
    where
        F: FnOnce() + Send + 'static,
    {
        self.core.submit_inner(Some(Box::new(mutate)))
    }

    /// Drains in-flight epochs, emits the stream's `RunEnd`, and
    /// releases the graph for other submissions. Idempotent; also called
    /// by `Drop`. Blocks until the stream is quiescent.
    pub fn close(&self) {
        self.core.close_inner();
    }

    /// Process-unique run id shared by every epoch of this stream (and
    /// stamped on its lifecycle events).
    pub fn run_id(&self) -> u64 {
        self.core.run_id
    }

    /// The in-flight depth (residency ring size) this session runs at.
    pub fn depth(&self) -> usize {
        self.core.depth
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.core.state.lock();
        f.debug_struct("Session")
            .field("run_id", &self.core.run_id)
            .field("depth", &self.core.depth)
            .field("submitted", &st.next_epoch)
            .field("completed", &st.completed_mark)
            .field("inflight", &st.inflight)
            .field("closed", &st.closed)
            .finish()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.core.close_inner();
    }
}

impl SessionCore {
    fn submit_inner(self: &Arc<Self>, mutator: Option<Box<dyn FnOnce() + Send>>) -> EpochFuture {
        if self.inner.done.load(Ordering::SeqCst) {
            return EpochFuture::ready(Err(HfError::ExecutorShutDown));
        }
        let core = {
            let mut st = self.state.lock();
            loop {
                if st.closed {
                    return EpochFuture::ready(Err(HfError::StreamClosed));
                }
                if st.inflight < self.depth {
                    break;
                }
                self.cv.wait(&mut st);
            }
            let e = st.next_epoch;
            st.next_epoch += 1;
            let core = Completion::new_epoch(self.run_id, e);
            if st.inflight == 0 && !st.holding {
                st.holding = true;
                self.inner.num_topologies.fetch_add(1, Ordering::SeqCst);
            }
            st.inflight += 1;
            st.queue.push_back(PendingEpoch {
                epoch: e,
                mutator,
                core: core.clone(),
            });
            core
        };
        self.pump();
        EpochFuture { core }
    }

    /// Admits every epoch whose turn has come: the previous epoch's
    /// prologue must have drained (its host inputs are consumed — the
    /// admission point of the pipeline contract), and the epoch's ring
    /// slot must be free (the epoch `depth` back has completed). Safe to
    /// call from any thread; admission order is epoch order.
    fn pump(self: &Arc<Self>) {
        loop {
            let (pending, placement, fusion) = {
                let mut st = self.state.lock();
                if !st.claimed {
                    return;
                }
                let Some(front) = st.queue.front() else { return };
                let e = front.epoch;
                if st.prologue_done < st.admitted {
                    return;
                }
                if e >= self.depth as u64 && st.completed_mark < e - self.depth as u64 + 1 {
                    return;
                }
                let pending = st.queue.pop_front().expect("front checked");
                st.admitted = e + 1;
                (pending, Arc::clone(&st.placement), Arc::clone(&st.fusion))
            };
            let e = pending.epoch;
            // Apply the input mutation in the race-free window the
            // admission condition just established, bumping the input
            // generation so failover replay of an *earlier* epoch knows
            // its pulls are superseded.
            let admitted_gen = match pending.mutator {
                Some(m) => {
                    let g = self.input_gen.fetch_add(1, Ordering::SeqCst) + 1;
                    m();
                    g
                }
                None => self.input_gen.load(Ordering::SeqCst),
            };
            let mut fired = false;
            let once = Box::new(move || std::mem::replace(&mut fired, true));
            let hook_me = Arc::clone(self);
            let ecore = pending.core.clone();
            let extras = TopoExtras {
                epoch: Some(e),
                pull_override: Some(Arc::clone(&self.rings[(e % self.depth as u64) as usize])),
                gate: (!self.gate_heads.is_empty()).then(|| EpochGate {
                    heads: self.gate_heads.clone(),
                    is_head: self.gate_is_head.clone(),
                    opened: AtomicBool::new(false),
                }),
                prologue: (self.prologue_count > 0).then(|| {
                    let me = Arc::clone(self);
                    PrologueTrack {
                        is_prologue: Arc::clone(&self.is_prologue),
                        pending: AtomicUsize::new(self.prologue_count),
                        hook: Mutex::new(Some(Box::new(move || me.on_prologue_drained(e)))),
                    }
                }),
                on_finish: Some(Box::new(move |t: &Arc<Topology>| {
                    hook_me.on_epoch_done(t, t.epoch.unwrap_or(0), ecore)
                })),
                input_guard: Some(InputGuard {
                    gen: Arc::clone(&self.input_gen),
                    admitted_gen,
                }),
                tenant: None,
            };
            let topo = Topology::new(
                Arc::clone(&self.frozen),
                self.run_id,
                placement,
                fusion,
                once,
                Arc::clone(&pending.core.cancel),
                extras,
            );
            self.inner.emit_raw_run_lc(
                self.run_id,
                &self.label,
                LifecyclePhase::EpochStart,
                true,
                None,
                Some(e),
                None,
            );
            self.inner.registry.register(&topo);
            self.inner.num_topologies.fetch_add(1, Ordering::SeqCst);
            self.inner.start_topology(Arc::clone(&topo));
            // Post-start bookkeeping under the session lock. The gate
            // decision is serialized here (and in `on_epoch_done`'s
            // drain) so `open_gate` never races `schedule_sources` of
            // the same topology: sources were already scheduled above,
            // and a pending gate only opens via the drain, after this
            // push.
            let open_now = {
                let mut st = self.state.lock();
                if self.prologue_count == 0 && st.prologue_done < e + 1 {
                    st.prologue_done = e + 1;
                }
                if self.gate_heads.is_empty() {
                    false
                } else if st.completed_mark >= e {
                    true
                } else {
                    st.pending_gate.push((e, Arc::clone(&topo)));
                    false
                }
            };
            if open_now {
                self.inner.open_gate(&topo);
            }
        }
    }

    /// Prologue-drain hook of epoch `e`: unblocks admission of epoch
    /// `e + 1` (runs on whichever worker/engine thread finished the last
    /// prologue node).
    fn on_prologue_drained(self: &Arc<Self>, e: u64) {
        {
            let mut st = self.state.lock();
            if st.prologue_done < e + 1 {
                st.prologue_done = e + 1;
            }
        }
        self.pump();
    }

    /// Epoch-completion hook: carries failover re-placements forward,
    /// re-places against survivors after an unrecovered device loss,
    /// advances the completion watermark, opens now-eligible gates,
    /// settles the epoch's promise, and releases backpressure.
    fn on_epoch_done(self: &Arc<Self>, topo: &Arc<Topology>, e: u64, core: Completion) {
        let result = topo.result();
        let mut to_open: Vec<Arc<Topology>> = Vec::new();
        let release = {
            let mut st = self.state.lock();
            // A successful mid-epoch failover left a re-placed plan on
            // the topology; adopt it for subsequent epochs.
            let p = topo.placement();
            if !Arc::ptr_eq(&p, &st.placement) {
                st.fusion = Arc::new(FusionPlan::compute_masked(
                    &self.frozen,
                    &p,
                    self.inner.fusion,
                    &self.is_body,
                ));
                st.placement = p;
            }
            // An epoch that *failed* on a device loss (failover budget
            // spent, or superseded inputs) never re-placed; re-place the
            // stream directly against the survivors so later epochs
            // don't cascade-fail onto dead hardware.
            if let Err(err) = &result {
                if matches!(err.gpu_cause(), Some(hf_gpu::GpuError::DeviceLost(_))) {
                    self.replace_on_survivors(&mut st);
                }
            }
            st.done_set.insert(e);
            let mut mark = st.completed_mark;
            while st.done_set.remove(&mark) {
                mark += 1;
            }
            st.completed_mark = mark;
            // A cancelled-at-admission epoch never ran a prologue node;
            // completing it must still unblock the next admission.
            if st.prologue_done < e + 1 {
                st.prologue_done = e + 1;
            }
            st.inflight -= 1;
            let mark = st.completed_mark;
            let mut keep = Vec::new();
            for (k, t) in st.pending_gate.drain(..) {
                if k <= mark {
                    to_open.push(t);
                } else {
                    keep.push((k, t));
                }
            }
            st.pending_gate = keep;
            let release = st.inflight == 0 && st.holding;
            if release {
                st.holding = false;
            }
            release
        };
        if matches!(result, Err(HfError::Cancelled)) {
            self.inner.stats.cancelled.incr();
        }
        for t in &to_open {
            self.inner.open_gate(t);
        }
        core.promise.complete(result);
        if release && self.inner.num_topologies.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.inner.idle_lock.lock();
            self.inner.idle_cv.notify_all();
        }
        self.cv.notify_all();
        self.pump();
    }

    /// Re-places the stream's steady-state plan against the surviving
    /// devices (caller holds the session lock). Keeps surviving groups
    /// on their devices where possible so residency stays warm. A
    /// placement failure (no devices left) keeps the old plan: further
    /// epochs fail individually, which is the honest outcome.
    fn replace_on_survivors(&self, st: &mut SessState) {
        let devices = self.inner.gpu.devices();
        let lost: Vec<bool> = devices.iter().map(|d| d.is_lost()).collect();
        if !lost.iter().any(|&l| l) {
            return;
        }
        for (d, &l) in lost.iter().enumerate() {
            if l && !self.inner.lost_seen[d].swap(true, Ordering::Relaxed) {
                self.inner.stats.devices_lost.incr();
            }
        }
        let cost = devices
            .first()
            .map(|d| d.cost_model())
            .unwrap_or_default();
        let refined = self.inner.refined_costs(self.frozen.name());
        if let Ok(p) = crate::placement::failover_placement_ext(
            &*self.frozen,
            &st.placement.device_of,
            &lost,
            &cost,
            self.inner.policy,
            refined.as_ref(),
        ) {
            self.inner.record_placement(&p);
            let placement = Arc::new(p);
            st.fusion = Arc::new(FusionPlan::compute_masked(
                &self.frozen,
                &placement,
                self.inner.fusion,
                &self.is_body,
            ));
            st.placement = placement;
        }
    }

    /// Drains and ends the stream; idempotent.
    fn close_inner(&self) {
        {
            let mut st = self.state.lock();
            if st.run_ended {
                return;
            }
            st.closed = true;
            self.cv.notify_all();
            // Wait for the claim (a session queued behind another run is
            // started by that run's release) and for in-flight epochs to
            // drain. `pump` keeps admitting queued epochs after close.
            while !(st.claimed && st.inflight == 0) {
                self.cv.wait(&mut st);
            }
            st.run_ended = true;
        }
        self.inner.emit_raw_run_lc(
            self.run_id,
            &self.label,
            LifecyclePhase::RunEnd,
            true,
            None,
            None,
            None,
        );
        let next = {
            let mut rs = self.shared.run_state.lock();
            match rs.queued.pop_front() {
                Some(s) => Some(s),
                None => {
                    rs.active = false;
                    None
                }
            }
        };
        if let Some(starter) = next {
            starter();
        }
    }
}
