//! Disjoint-set forest (union-find) with path halving and union by size.
//!
//! Algorithm 1 in the paper (*DevicePlacement*) unions every kernel task
//! with its source pull tasks, then bin-packs each resulting set root onto
//! a GPU. This module provides the sequential disjoint-set structure that
//! placement runs on during topology setup.

/// Union-find over `0..len` with path halving and union by size.
///
/// Amortized near-constant time per operation (inverse Ackermann).
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    /// Size of the set, valid only at roots.
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "UnionFind supports at most u32::MAX elements");
        Self {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Finds the set root of `x`, halving the path on the way.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Finds the root without mutating (no path compression).
    pub fn find_const(&self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// True if `x` is the root of its set (mirrors the paper's
    /// `is_set_root` check in Algorithm 1 line 10).
    pub fn is_root(&self, x: usize) -> bool {
        self.parent[x] == x as u32
    }

    /// Unions the sets of `a` and `b`; returns the new root. Smaller set
    /// is linked under the larger.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.sets -= 1;
        big
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert!(uf.is_root(i));
            assert_eq!(uf.set_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.num_sets(), 4);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        uf.union(1, 3);
        assert!(uf.same(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.set_size(3), 4);
    }

    #[test]
    fn union_idempotent() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn find_const_agrees_with_find() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(5, 6);
        for i in 0..8 {
            assert_eq!(uf.find_const(i), uf.clone().find(i));
        }
    }

    #[test]
    fn exactly_one_root_per_set() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        let roots: Vec<usize> = (0..10).filter(|&i| uf.is_root(i)).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(uf.set_size(0), 10);
    }
}
