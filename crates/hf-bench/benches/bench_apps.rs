//! Application-kernel microbenchmarks: STA sweep, critical-path search,
//! MIS, Hungarian matching — the building blocks behind Figs 6 and 9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hf_place::mis::{make_priorities, mis_cpu};
use hf_place::{hungarian, PlacementConfig, PlacementDb};
use hf_timing::views::make_views;
use hf_timing::{k_critical_paths, run_sta, Circuit, CircuitConfig};

fn sta(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing/sta");
    g.sample_size(10);
    for &n in &[5_000usize, 50_000] {
        let circuit = Circuit::synthesize(&CircuitConfig {
            num_gates: n,
            ..Default::default()
        });
        let view = &make_views(1, 0.4)[0];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("full_sweep", n), &circuit, |b, circuit| {
            b.iter(|| run_sta(circuit, view));
        });
    }
    g.finish();
}

fn critical_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing/k_paths");
    g.sample_size(10);
    let circuit = Circuit::synthesize(&CircuitConfig {
        num_gates: 20_000,
        ..Default::default()
    });
    let view = &make_views(1, 0.4)[0];
    for &k in &[16usize, 256] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| k_critical_paths(&circuit, view, k));
        });
    }
    g.finish();
}

fn mis(c: &mut Criterion) {
    let mut g = c.benchmark_group("place/mis");
    g.sample_size(10);
    for &n in &[2_000usize, 20_000] {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: n,
            num_nets: n,
            ..Default::default()
        });
        let (off, nbr) = db.conflict_adjacency();
        let pri = make_priorities(n, 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("cpu", n), &n, |b, _| {
            b.iter(|| mis_cpu(&off, &nbr, &pri));
        });
    }
    g.finish();
}

/// Incremental retiming vs full recompute after a local edit — the
/// OpenTimer 2.0 speedup this repository reproduces.
fn incremental_sta(c: &mut Criterion) {
    use hf_timing::IncrementalTimer;
    let mut g = c.benchmark_group("timing/incremental");
    g.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        let circuit = Circuit::synthesize(&CircuitConfig {
            num_gates: n,
            ..Default::default()
        });
        let view = make_views(1, 0.5)[0].clone();
        // Edit a gate near the outputs: a small forward cone.
        let gate = (n - 20) as u32;
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            let mut t = IncrementalTimer::new(circuit.clone(), view.clone());
            let mut flip = 1.0f32;
            b.iter(|| {
                flip = if flip == 1.0 { 2.0 } else { 1.0 };
                t.set_delay_factor(gate, flip);
                t.update()
            });
        });
        g.bench_with_input(BenchmarkId::new("full_sweep", n), &n, |b, _| {
            b.iter(|| run_sta(&circuit, &view));
        });
    }
    g.finish();
}

fn matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("place/hungarian");
    for &n in &[6usize, 12, 24] {
        let cost: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 31 + j * 17) % 97) as u64).collect())
            .collect();
        g.bench_with_input(BenchmarkId::new("n", n), &cost, |b, cost| {
            b.iter(|| hungarian(cost));
        });
    }
    g.finish();
}

criterion_group!(benches, sta, critical_paths, incremental_sta, mis, matching);
criterion_main!(benches);
