//! Stateful host-side data binding for pull and push tasks.
//!
//! The paper binds pull/push tasks to host memory through `std::span`
//! captured in a "stateful tuple" (Listings 3–6): the span is *re-formed at
//! execution time*, so a host task that resizes the vector beforehand is
//! seen by the pull task. Rust cannot alias user memory across threads
//! safely, so the library provides [`HostVec<T>`] — a shared, lockable
//! vector — as the binding endpoint. The stateful property is identical:
//! pull reads the vector's *current* contents when the copy executes, and
//! push writes back into the vector at execution time.
//!
//! Every [`HostVec`] additionally carries a **monotonic version counter**,
//! bumped whenever a write guard is taken. Pull tasks record the version
//! they copied to the device; on re-execution with an unchanged version
//! (and unchanged placement) the H2D copy is *elided* because the device
//! bytes are already current — see the executor's residency tracking.

use hf_gpu::plain::{self, Plain};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Shared<T> {
    data: RwLock<Vec<T>>,
    /// Bumped (under the write lock) every time a write guard is handed
    /// out. Conservative: taking the guard counts as a mutation even if
    /// nothing is written, which can only cause a redundant copy, never a
    /// stale one.
    version: AtomicU64,
}

/// A shared host vector bindable to pull and push tasks.
///
/// Clones share the same storage (`Arc` inside). Host tasks mutate it
/// through [`HostVec::write`]; pull tasks snapshot its bytes when they
/// execute; push tasks overwrite it when they execute.
///
/// ```
/// use hf_core::data::HostVec;
/// let x: HostVec<i32> = HostVec::new();
/// x.write().resize(4, 7);
/// assert_eq!(x.read().as_slice(), &[7, 7, 7, 7]);
/// ```
pub struct HostVec<T> {
    inner: Arc<Shared<T>>,
}

impl<T> Clone for HostVec<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for HostVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for HostVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("HostVec").field(&*self.inner.data.read()).finish()
    }
}

impl<T> HostVec<T> {
    /// Creates an empty shared vector.
    pub fn new() -> Self {
        Self::from_vec(Vec::new())
    }

    /// Creates from existing contents.
    pub fn from_vec(v: Vec<T>) -> Self {
        Self {
            inner: Arc::new(Shared {
                data: RwLock::new(v),
                version: AtomicU64::new(0),
            }),
        }
    }

    /// Read guard over the contents.
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, Vec<T>> {
        self.inner.data.read()
    }

    /// Write guard over the contents. Taking the guard bumps the version
    /// counter, invalidating any device-resident copy of this vector.
    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, Vec<T>> {
        let guard = self.inner.data.write();
        // Bumped under the write lock so a concurrent versioned read
        // cannot pair the new version with the old bytes.
        self.inner.version.fetch_add(1, Ordering::Release);
        guard
    }

    /// Current value of the monotonic version counter.
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// Current element count.
    pub fn len(&self) -> usize {
        self.inner.data.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.data.read().is_empty()
    }

    /// Extracts the contents, leaving the shared vector empty.
    pub fn take(&self) -> Vec<T> {
        std::mem::take(&mut *self.write())
    }

    /// Stable identity of the shared storage: equal across clones, unique
    /// across distinct vectors, for as long as any clone lives. This is
    /// the same value [`HostSource::source_id`] / [`HostSink::sink_id`]
    /// report, and what [`crate::HostTask::reads`] /
    /// [`crate::HostTask::writes`] declare to the static analyzer.
    pub fn buffer_id(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }
}

impl<T: Clone> HostVec<T> {
    /// Clones the contents out.
    pub fn to_vec(&self) -> Vec<T> {
        self.inner.data.read().clone()
    }
}

impl<T> From<Vec<T>> for HostVec<T> {
    fn from(v: Vec<T>) -> Self {
        Self::from_vec(v)
    }
}

/// Anything a pull task can read host bytes from at execution time.
pub trait HostSource: Send + Sync + 'static {
    /// Snapshot of the current bytes (called when the H2D copy executes —
    /// this is what makes pull tasks stateful).
    fn fetch_bytes(&self) -> Vec<u8>;
    /// Current byte length (used to size the device allocation).
    fn byte_len(&self) -> usize;
    /// Monotonic version of the contents, if the source tracks one.
    /// Sources returning `None` are never elided. The default tracks
    /// nothing.
    fn version(&self) -> Option<u64> {
        None
    }
    /// Stable identity of the underlying storage, if the source has one.
    /// Two sources with the same id share the same bytes (e.g. clones of
    /// one [`HostVec`]). Used to carry device residency across graph
    /// re-freezes: a re-frozen pull of the same storage inherits the old
    /// snapshot's warm device buffer. Sources returning `None` never
    /// carry residency over. The default tracks nothing.
    fn source_id(&self) -> Option<usize> {
        None
    }
    /// Snapshot of the current bytes together with their version, read
    /// atomically (the version must describe exactly these bytes).
    fn fetch_bytes_versioned(&self) -> (Vec<u8>, Option<u64>) {
        (self.fetch_bytes(), None)
    }
}

/// Anything a push task can write device bytes back into at execution
/// time.
pub trait HostSink: Send + Sync + 'static {
    /// Overwrites the host storage with the device bytes.
    fn store_bytes(&self, bytes: &[u8]);
    /// Overwrites the host storage and returns the resulting version, if
    /// the sink tracks one. After a push the host and device bytes agree,
    /// so a pull of the same buffer may treat the returned version as
    /// device-resident.
    fn store_bytes_versioned(&self, bytes: &[u8]) -> Option<u64> {
        self.store_bytes(bytes);
        None
    }
    /// Stable identity of the underlying storage, if the sink has one —
    /// the counterpart of [`HostSource::source_id`]. Two endpoints with
    /// the same id share bytes; the static analyzer uses it to pair push
    /// writes with pull/host accesses of the same buffer. The default
    /// tracks nothing.
    fn sink_id(&self) -> Option<usize> {
        None
    }
}

impl<T: Plain> HostSource for HostVec<T> {
    fn fetch_bytes(&self) -> Vec<u8> {
        plain::as_bytes(self.inner.data.read().as_slice()).to_vec()
    }

    fn byte_len(&self) -> usize {
        self.inner.data.read().len() * std::mem::size_of::<T>()
    }

    fn version(&self) -> Option<u64> {
        Some(HostVec::version(self))
    }

    fn source_id(&self) -> Option<usize> {
        // The shared allocation's address: stable and unique for as long
        // as any clone (and thus any pull task holding the source) lives.
        Some(self.buffer_id())
    }

    fn fetch_bytes_versioned(&self) -> (Vec<u8>, Option<u64>) {
        // Version read under the read lock: a writer bumps before its
        // guard is granted, so the pair is consistent.
        let guard = self.inner.data.read();
        let version = self.inner.version.load(Ordering::Acquire);
        (plain::as_bytes(guard.as_slice()).to_vec(), Some(version))
    }
}

impl<T: Plain> HostSink for HostVec<T> {
    fn store_bytes(&self, bytes: &[u8]) {
        self.store_bytes_versioned(bytes);
    }

    fn store_bytes_versioned(&self, bytes: &[u8]) -> Option<u64> {
        let mut guard = self.write();
        let elems: &[T] = plain::from_bytes(&bytes[..bytes.len() - bytes.len() % std::mem::size_of::<T>()]);
        guard.clear();
        guard.extend_from_slice(elems);
        // Read back under the still-held write lock: this is the version
        // that describes exactly the bytes just stored.
        Some(self.inner.version.load(Ordering::Acquire))
    }

    fn sink_id(&self) -> Option<usize> {
        Some(self.buffer_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateful_resize_is_visible_to_source() {
        let v: HostVec<i32> = HostVec::new();
        let src: &dyn HostSource = &v.clone();
        assert_eq!(src.byte_len(), 0);
        v.write().resize(3, 5);
        assert_eq!(src.byte_len(), 12);
        assert_eq!(src.fetch_bytes(), plain::as_bytes(&[5i32, 5, 5]).to_vec());
    }

    #[test]
    fn sink_overwrites_contents() {
        let v: HostVec<u32> = HostVec::from_vec(vec![1, 2, 3, 4, 5]);
        let sink: &dyn HostSink = &v.clone();
        sink.store_bytes(plain::as_bytes(&[9u32, 8]));
        assert_eq!(v.to_vec(), vec![9, 8]);
    }

    #[test]
    fn clones_share_storage() {
        let a: HostVec<f32> = HostVec::new();
        let b = a.clone();
        a.write().push(1.5);
        assert_eq!(b.to_vec(), vec![1.5]);
        assert_eq!(b.take(), vec![1.5]);
        assert!(a.is_empty());
    }

    #[test]
    fn write_bumps_version() {
        let v: HostVec<i32> = HostVec::from_vec(vec![1]);
        let v0 = v.version();
        {
            let _g = v.write();
        }
        assert_eq!(v.version(), v0 + 1);
        // Reads do not bump.
        let _ = v.read();
        let _ = v.to_vec();
        assert_eq!(v.version(), v0 + 1);
    }

    #[test]
    fn versioned_fetch_and_store_agree() {
        let v: HostVec<i32> = HostVec::from_vec(vec![3, 4]);
        let src: &dyn HostSource = &v.clone();
        let (bytes, ver) = src.fetch_bytes_versioned();
        assert_eq!(ver, Some(v.version()));
        assert_eq!(bytes, plain::as_bytes(&[3i32, 4]).to_vec());

        let sink: &dyn HostSink = &v.clone();
        let stored = sink.store_bytes_versioned(plain::as_bytes(&[7i32]));
        assert_eq!(stored, Some(v.version()), "store returns the new version");
        assert_eq!(v.to_vec(), vec![7]);
    }

    #[test]
    fn clones_share_version_counter() {
        let a: HostVec<u8> = HostVec::new();
        let b = a.clone();
        let v0 = a.version();
        b.write().push(1);
        assert_eq!(a.version(), v0 + 1);
    }

    #[test]
    fn buffer_id_matches_source_and_sink_ids() {
        let v: HostVec<u32> = HostVec::new();
        let src: &dyn HostSource = &v.clone();
        let sink: &dyn HostSink = &v.clone();
        assert_eq!(src.source_id(), Some(v.buffer_id()));
        assert_eq!(sink.sink_id(), Some(v.buffer_id()));
        assert_eq!(v.clone().buffer_id(), v.buffer_id());
    }

    #[test]
    fn source_id_identifies_shared_storage() {
        let a: HostVec<u8> = HostVec::new();
        let b = a.clone();
        let c: HostVec<u8> = HostVec::new();
        let (sa, sb, sc): (&dyn HostSource, &dyn HostSource, &dyn HostSource) =
            (&a, &b, &c);
        assert!(sa.source_id().is_some());
        assert_eq!(sa.source_id(), sb.source_id());
        assert_ne!(sa.source_id(), sc.source_id());
    }
}
