//! End-to-end Listing 1: the saxpy task graph, including stateful
//! re-execution semantics.

use heteroflow::prelude::*;

fn build_saxpy(
    g: &Heteroflow,
    x: &HostVec<i32>,
    y: &HostVec<i32>,
    n: usize,
    a: i32,
) -> (HostTask, HostTask) {
    let host_x = g.host("host_x", {
        let x = x.clone();
        move || {
            let mut w = x.write();
            if w.is_empty() {
                w.resize(n, 1);
            }
        }
    });
    let host_y = g.host("host_y", {
        let y = y.clone();
        move || {
            let mut w = y.write();
            if w.is_empty() {
                w.resize(n, 2);
            }
        }
    });
    let pull_x = g.pull("pull_x", x);
    let pull_y = g.pull("pull_y", y);
    let kernel = g.kernel("saxpy", &[&pull_x, &pull_y], move |cfg, args| {
        let (xs, ys) = args.slice2_mut::<i32, i32>(0, 1).expect("disjoint");
        for i in cfg.threads() {
            if i < n {
                ys[i] += a * xs[i];
            }
        }
    });
    kernel.cover(n, 256);
    let push_x = g.push("push_x", &pull_x, x);
    let push_y = g.push("push_y", &pull_y, y);
    host_x.precede(&pull_x);
    host_y.precede(&pull_y);
    kernel.succeed_all(&[&pull_x, &pull_y]);
    kernel.precede_all(&[&push_x, &push_y]);
    (host_x, host_y)
}

#[test]
fn saxpy_end_to_end() {
    const N: usize = 65536;
    let ex = Executor::new(4, 2);
    let g = Heteroflow::new("saxpy");
    let x: HostVec<i32> = HostVec::new();
    let y: HostVec<i32> = HostVec::new();
    build_saxpy(&g, &x, &y, N, 2);
    ex.run(&g).wait().expect("saxpy runs");
    assert_eq!(x.len(), N);
    assert!(y.read().iter().all(|&v| v == 4), "y = 2*1 + 2");
}

#[test]
fn saxpy_on_every_gpu_count() {
    const N: usize = 4096;
    for gpus in 1..=4u32 {
        let ex = Executor::new(2, gpus);
        let g = Heteroflow::new("saxpy");
        let x: HostVec<i32> = HostVec::new();
        let y: HostVec<i32> = HostVec::new();
        build_saxpy(&g, &x, &y, N, 3);
        ex.run(&g).wait().expect("saxpy runs");
        assert!(y.read().iter().all(|&v| v == 5), "gpus={gpus}");
    }
}

/// Statefulness across runs: the same graph re-runs over *changed* host
/// data — the pulls re-read current contents, and the kernel accumulates.
#[test]
fn saxpy_rerun_sees_new_data() {
    const N: usize = 1024;
    let ex = Executor::new(2, 1);
    let g = Heteroflow::new("saxpy");
    let x: HostVec<i32> = HostVec::new();
    let y: HostVec<i32> = HostVec::new();
    build_saxpy(&g, &x, &y, N, 2);

    ex.run(&g).wait().expect("first run");
    assert!(y.read().iter().all(|&v| v == 4));

    // Mutate host data between runs; the second run must see it.
    x.write().iter_mut().for_each(|v| *v = 10);
    ex.run(&g).wait().expect("second run");
    // y = 2*10 + 4.
    assert!(y.read().iter().all(|&v| v == 24));
}

/// run_n on a GPU graph: the kernel accumulates across rounds because
/// push writes back and the next round's pull re-reads.
#[test]
fn saxpy_run_n_accumulates() {
    const N: usize = 256;
    let ex = Executor::new(2, 1);
    let g = Heteroflow::new("saxpy");
    let x: HostVec<i32> = HostVec::new();
    let y: HostVec<i32> = HostVec::new();
    build_saxpy(&g, &x, &y, N, 1);
    // Each round: y = x + y = 1 + y. After 5 rounds: 2 + 5.
    ex.run_n(&g, 5).wait().expect("runs");
    assert!(y.read().iter().all(|&v| v == 7), "got {:?}", &y.read()[..4]);
}

/// run_until drives a GPU feedback loop: the predicate reads data the
/// push task wrote back each round (the Listing 12 pattern with real
/// device round-trips).
#[test]
fn run_until_observes_gpu_results() {
    const N: usize = 128;
    let ex = Executor::new(2, 1);
    let g = Heteroflow::new("feedback");
    let data: HostVec<i64> = HostVec::from_vec(vec![1; N]);
    let p = g.pull("pull", &data);
    let k = g.kernel("double", &[&p], |cfg, args| {
        let v = args.slice_mut::<i64>(0).expect("data");
        for t in cfg.threads() {
            if t < v.len() {
                v[t] *= 2;
            }
        }
    });
    k.cover(N, 64);
    let s = g.push("push", &p, &data);
    p.precede(&k);
    k.precede(&s);

    let watch = data.clone();
    ex.run_until(&g, move || watch.read()[0] >= 1024)
        .wait()
        .expect("feedback loop runs");
    // 1 -> 2 -> ... -> 1024 = ten doublings.
    assert!(data.read().iter().all(|&v| v == 1024));
}

/// Device pool must be pristine after the graph is dropped (pull
/// allocations persist with the frozen graph for transfer elision, and
/// are reclaimed when it goes away).
#[test]
fn pull_allocations_are_reclaimed() {
    const N: usize = 2048;
    let ex = Executor::new(2, 2);
    let g = Heteroflow::new("saxpy");
    let x: HostVec<i32> = HostVec::new();
    let y: HostVec<i32> = HostVec::new();
    build_saxpy(&g, &x, &y, N, 2);
    ex.run(&g).wait().expect("runs");
    drop(g);
    // Worker and engine threads release their reference to the frozen
    // snapshot asynchronously after the completion promise settles, so
    // poll briefly instead of asserting instantly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let leaked: usize = ex
            .gpu_runtime()
            .devices()
            .iter()
            .map(|d| d.pool_stats().bytes_in_use)
            .sum();
        if leaked == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pull memory leaked: {leaked} bytes still in use"
        );
        std::thread::yield_now();
    }
}
