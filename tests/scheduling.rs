//! Integration tests of the scheduler: device placement end-to-end,
//! error propagation, graph queuing, and the Fig 3 reuse pattern.

use heteroflow::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Many independent kernel groups must spread across all devices
/// (balanced packing) and still compute correctly.
#[test]
fn groups_spread_across_devices_and_compute() {
    const GROUPS: usize = 12;
    const N: usize = 512;
    let ex = Executor::new(4, 4);
    let g = Heteroflow::new("spread");
    let datas: Vec<HostVec<u32>> = (0..GROUPS)
        .map(|i| HostVec::from_vec(vec![i as u32; N]))
        .collect();
    for (i, d) in datas.iter().enumerate() {
        let p = g.pull(&format!("p{i}"), d);
        let k = g.kernel(&format!("k{i}"), &[&p], move |cfg, args| {
            let v = args.slice_mut::<u32>(0).expect("data");
            for t in cfg.threads() {
                if t < v.len() {
                    v[t] += 100;
                }
            }
        });
        k.cover(N, 128);
        let s = g.push(&format!("s{i}"), &p, d);
        p.precede(&k);
        k.precede(&s);
    }
    ex.run(&g).wait().expect("runs");
    for (i, d) in datas.iter().enumerate() {
        assert!(d.read().iter().all(|&v| v == i as u32 + 100));
    }
    // Every device got some kernels (12 groups over 4 GPUs, balanced).
    for dev in ex.gpu_runtime().devices() {
        let k = dev.stats().kernels.load(Ordering::Relaxed);
        assert!(k >= 1, "device {} ran no kernels", dev.id());
    }
}

/// The Fig 3 pattern: kernel2 reads pull1's device data through a
/// transitive dependency only.
#[test]
fn transitive_data_reuse() {
    let ex = Executor::new(2, 3);
    let g = Heteroflow::new("fig3");
    let v1: HostVec<i32> = HostVec::from_vec(vec![5; 64]);
    let v2: HostVec<i32> = HostVec::from_vec(vec![7; 64]);
    let p1 = g.pull("p1", &v1);
    let p2 = g.pull("p2", &v2);
    let k1 = g.kernel("k1", &[&p1], |cfg, args| {
        let v = args.slice_mut::<i32>(0).expect("p1");
        for t in cfg.threads() {
            if t < v.len() {
                v[t] *= 2;
            }
        }
    });
    k1.cover(64, 32);
    let k2 = g.kernel("k2", &[&p1, &p2], |cfg, args| {
        let (a, b) = args.slice2_mut::<i32, i32>(0, 1).expect("disjoint");
        for t in cfg.threads() {
            if t < b.len() {
                b[t] += a[t];
            }
        }
    });
    k2.cover(64, 32);
    let s2 = g.push("s2", &p2, &v2);
    // No direct p1 -> k2 edge: ordering flows through k1.
    p1.precede(&k1);
    p2.precede(&k2);
    k1.precede(&k2);
    k2.precede(&s2);
    ex.run(&g).wait().expect("runs");
    assert!(v2.read().iter().all(|&v| v == 7 + 10), "b = 7 + 2*5");
}

/// A kernel whose pull dependency was omitted must fail with
/// SourceNotPulled, not compute garbage.
#[test]
fn missing_pull_dependency_is_reported() {
    let ex = Executor::new(2, 1);
    let g = Heteroflow::new("missing");
    let d: HostVec<i32> = HostVec::from_vec(vec![1; 16]);
    let p = g.pull("pull", &d);
    let k = g.kernel("kernel", &[&p], |_, _| {});
    k.cover(16, 16);
    // Deliberately force kernel BEFORE pull.
    k.precede(&p);
    let err = ex.run(&g).wait().expect_err("must fail");
    assert!(
        matches!(err, HfError::SourceNotPulled { .. }),
        "got {err:?}"
    );
}

/// A panicking kernel surfaces as TaskPanicked and the executor (and the
/// device engine) survive to run the next graph.
#[test]
fn kernel_panic_is_contained() {
    let ex = Executor::new(2, 1);
    let g = Heteroflow::new("boom");
    let d: HostVec<i32> = HostVec::from_vec(vec![1; 16]);
    let p = g.pull("pull", &d);
    let k = g.kernel("kernel", &[&p], |_, _| panic!("kernel bug"));
    k.cover(16, 16);
    p.precede(&k);
    let err = ex.run(&g).wait().expect_err("must fail");
    assert!(matches!(err, HfError::TaskPanicked { .. }), "got {err:?}");

    // Executor and device still work.
    let g2 = Heteroflow::new("after");
    let d2: HostVec<i32> = HostVec::from_vec(vec![3; 16]);
    let p2 = g2.pull("pull", &d2);
    let k2 = g2.kernel("kernel", &[&p2], |cfg, args| {
        let v = args.slice_mut::<i32>(0).expect("data");
        for t in cfg.threads() {
            if t < v.len() {
                v[t] += 1;
            }
        }
    });
    k2.cover(16, 16);
    let s2 = g2.push("push", &p2, &d2);
    p2.precede(&k2);
    k2.precede(&s2);
    ex.run(&g2).wait().expect("recovered");
    assert!(d2.read().iter().all(|&v| v == 4));
}

/// Cycles are rejected at submission, through the public run API.
#[test]
fn cycle_rejected_at_run() {
    let ex = Executor::new(1, 0);
    let g = Heteroflow::new("cycle");
    let a = g.host("a", || {});
    let b = g.host("b", || {});
    a.precede(&b);
    b.precede(&a);
    assert!(matches!(
        ex.run(&g).wait(),
        Err(HfError::CycleDetected { .. })
    ));
}

/// Futures from interleaved graphs all complete; wait_for_all drains.
#[test]
fn many_graphs_interleaved() {
    let ex = Executor::new(4, 2);
    let counter = Arc::new(AtomicUsize::new(0));
    let mut futures = Vec::new();
    let graphs: Vec<Heteroflow> = (0..10)
        .map(|i| {
            let g = Heteroflow::new(&format!("g{i}"));
            let c = Arc::clone(&counter);
            let d: HostVec<u8> = HostVec::from_vec(vec![0; 128]);
            let h = g.host("h", move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
            let p = g.pull("p", &d);
            let k = g.kernel("k", &[&p], |_, _| {});
            k.cover(128, 64);
            h.precede(&p);
            p.precede(&k);
            g
        })
        .collect();
    for g in &graphs {
        futures.push(ex.run_n(g, 3));
    }
    ex.wait_for_all();
    for f in &futures {
        assert!(f.is_done());
        f.wait().expect("each run succeeds");
    }
    assert_eq!(counter.load(Ordering::SeqCst), 30);
}

/// Structurally modifying a graph while a topology is running is caught:
/// the next `run` reports `GraphBusy` instead of racing the executor.
#[test]
fn mutation_while_running_is_rejected() {
    let ex = Executor::new(2, 0);
    let g = Heteroflow::new("busy");
    let gate = Arc::new(std::sync::Barrier::new(2));
    let first_run = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let (g2, fr) = (Arc::clone(&gate), Arc::clone(&first_run));
    g.host("slow", move || {
        // Hold the topology active only on the first run; re-runs of the
        // (re-frozen) graph must not block on the used-up barrier.
        if fr.swap(false, Ordering::SeqCst) {
            g2.wait();
        }
    });
    let fut = ex.run(&g);
    // The graph is active; mutate it and try to run again.
    g.host("added-mid-run", || {});
    let second = ex.run(&g);
    assert_eq!(second.wait(), Err(HfError::GraphBusy));
    gate.wait();
    fut.wait().expect("first run completes");
    // Once idle, the modified graph runs fine.
    ex.run(&g).wait().expect("re-freeze after idle");
}

/// Two executors can share one GPU runtime: both see the same devices,
/// memory pools, and counters.
#[test]
fn executors_share_a_gpu_runtime() {
    use heteroflow::gpu::{GpuConfig, GpuRuntime};
    let rt = Arc::new(GpuRuntime::new(2, GpuConfig::default()));
    let ex1 = Executor::builder(2, 0).gpu_runtime(Arc::clone(&rt)).build();
    let ex2 = Executor::builder(2, 0).gpu_runtime(Arc::clone(&rt)).build();
    assert_eq!(ex1.num_gpus(), 2);
    assert_eq!(ex2.num_gpus(), 2);

    let make = |tag: u32| {
        let g = Heteroflow::new(&format!("shared{tag}"));
        let d: HostVec<u32> = HostVec::from_vec(vec![tag; 64]);
        let p = g.pull("p", &d);
        let k = g.kernel("k", &[&p], |cfg, args| {
            let v = args.slice_mut::<u32>(0).expect("data");
            for t in cfg.threads() {
                if t < v.len() {
                    v[t] += 1;
                }
            }
        });
        k.cover(64, 32);
        let s = g.push("s", &p, &d);
        p.precede(&k);
        k.precede(&s);
        (g, d)
    };
    let (g1, d1) = make(10);
    let (g2, d2) = make(20);
    let f1 = ex1.run(&g1);
    let f2 = ex2.run(&g2);
    f1.wait().expect("ex1 runs");
    f2.wait().expect("ex2 runs");
    assert!(d1.read().iter().all(|&v| v == 11));
    assert!(d2.read().iter().all(|&v| v == 21));
    let total_kernels: u64 = rt
        .devices()
        .iter()
        .map(|d| d.stats().kernels.load(Ordering::Relaxed))
        .sum();
    assert_eq!(total_kernels, 2);
}

/// RunFuture implements std Future: graphs can be awaited from async
/// code.
#[test]
fn run_future_is_awaitable() {
    let ex = Executor::new(2, 0);
    let g = Heteroflow::new("awaited");
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    g.host("work", move || {
        h.fetch_add(1, Ordering::SeqCst);
    });

    // Minimal block_on (no async runtime dependency).
    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        use std::sync::mpsc;
        use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
        let (tx, rx) = mpsc::channel::<()>();
        unsafe fn clone(p: *const ()) -> RawWaker {
            let tx = &*(p as *const mpsc::Sender<()>);
            RawWaker::new(Box::into_raw(Box::new(tx.clone())) as *const (), &VT)
        }
        unsafe fn wake(p: *const ()) {
            let tx = Box::from_raw(p as *mut mpsc::Sender<()>);
            let _ = tx.send(());
        }
        unsafe fn wake_ref(p: *const ()) {
            let tx = &*(p as *const mpsc::Sender<()>);
            let _ = tx.send(());
        }
        unsafe fn drop_w(p: *const ()) {
            drop(Box::from_raw(p as *mut mpsc::Sender<()>));
        }
        static VT: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_ref, drop_w);
        let waker = unsafe {
            Waker::from_raw(RawWaker::new(
                Box::into_raw(Box::new(tx)) as *const (),
                &VT,
            ))
        };
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    let _ = rx.recv();
                }
            }
        }
    }

    let fut = ex.run_n(&g, 3);
    block_on(fut).expect("await succeeds");
    assert_eq!(hits.load(Ordering::SeqCst), 3);
}

/// Task fusion must be a pure optimization: identical results with the
/// chain-heavy MIS-style pattern, and the fused counter reflects it.
#[test]
fn fusion_is_transparent() {
    let run = |fusion: bool| -> (Vec<u64>, u64) {
        let ex = Executor::builder(2, 2).task_fusion(fusion).build();
        let g = Heteroflow::new("chainy");
        let d: HostVec<u64> = HostVec::from_vec((0..256).collect());
        let p = g.pull("p", &d);
        let mut prev: TaskRef = p.as_task();
        for i in 0..12 {
            let k = g.kernel(&format!("k{i}"), &[&p], |cfg, args| {
                let v = args.slice_mut::<u64>(0).expect("data");
                for t in cfg.threads() {
                    if t < v.len() {
                        v[t] = v[t].wrapping_mul(3).wrapping_add(1);
                    }
                }
            });
            k.cover(256, 64);
            k.succeed(&prev);
            prev = k.as_task();
        }
        let s = g.push("s", &p, &d);
        s.succeed(&prev);
        ex.run(&g).wait().expect("runs");
        (d.to_vec(), ex.stats().fused.sum())
    };
    let (with_fusion, fused) = run(true);
    let (without_fusion, not_fused) = run(false);
    assert_eq!(with_fusion, without_fusion, "fusion changed results");
    assert!(fused >= 12, "chain did not fuse: {fused}");
    assert_eq!(not_fused, 0);
}

/// The executor's placement spreads load across devices even for
/// *separate single-group graphs* submitted back-to-back (cross-topology
/// load bias).
#[test]
fn cross_topology_device_balancing() {
    let ex = Executor::new(2, 4);
    let mut futures = Vec::new();
    for i in 0..8 {
        let g = Heteroflow::new(&format!("solo{i}"));
        let d: HostVec<u64> = HostVec::from_vec(vec![1; 4096]);
        let p = g.pull("p", &d);
        let k = g.kernel("k", &[&p], |_, _| {});
        k.cover(4096, 256).work_units(1e6);
        p.precede(&k);
        futures.push((d, ex.run(&g)));
    }
    for (_, f) in &futures {
        f.wait().expect("runs");
    }
    let devices_used = ex
        .gpu_runtime()
        .devices()
        .iter()
        .filter(|d| d.stats().kernels.load(Ordering::Relaxed) > 0)
        .count();
    assert!(
        devices_used >= 2,
        "8 single-group graphs all packed onto {devices_used} device(s)"
    );
}
