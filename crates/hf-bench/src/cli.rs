//! A minimal `--key value` / `--flag` argument parser (no external CLI
//! dependency).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    kv: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name): `--key
    /// value` pairs and bare `--flag`s.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testing).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut kv = HashMap::new();
        let mut flags = Vec::new();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        kv.insert(key.to_string(), it.next().expect("peeked"));
                    }
                    _ => flags.push(key.to_string()),
                }
            }
        }
        Self { kv, flags }
    }

    /// Value of `--key`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.kv
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String value of `--key`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(|s| s.as_str())
    }

    /// True if bare `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn kv_and_flags() {
        let a = parse("--views 64 --json --scale 0.5 --policy random");
        assert_eq!(a.get("views", 0usize), 64);
        assert!((a.get("scale", 1.0f64) - 0.5).abs() < 1e-12);
        assert_eq!(a.get_str("policy"), Some("random"));
        assert!(a.flag("json"));
        assert!(!a.flag("dedicated"));
        assert_eq!(a.get("missing", 7u32), 7);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("--json --dedicated");
        assert!(a.flag("json") && a.flag("dedicated"));
    }
}
