//! Error type for graph construction and execution.

use hf_gpu::GpuError;
use std::fmt;

/// Errors produced by Heteroflow graph construction or execution.
///
/// Non-exhaustive: match with a wildcard arm; new failure modes (like the
/// fault-tolerance variants) may be added without a breaking release. Use
/// [`HfError::task`] to recover the offending task's name uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HfError {
    /// The task graph contains a dependency cycle and cannot be scheduled.
    CycleDetected {
        /// The tasks forming one cycle, in dependency order: each task's
        /// edge leads to the next, and the last task's edge closes back to
        /// the first. A self-loop is a single-element path.
        path: Vec<String>,
    },
    /// The graph was rejected before dispatch because static analysis
    /// found Error-severity diagnostics and the executor runs with
    /// [`crate::LintPolicy::Deny`]. See [`crate::Heteroflow::analyze`].
    LintRejected {
        /// Name of the rejected graph.
        graph: String,
        /// The Error-severity findings, each rendered as
        /// `"HF0xx [task, ...]: message"`.
        diagnostics: Vec<String>,
    },
    /// A GPU task exists but the executor owns zero GPUs.
    NoGpus {
        /// Name of the offending task.
        task: String,
    },
    /// A kernel executed before one of its source pull tasks — the user
    /// omitted the dependency the paper makes explicit ("pull tasks must
    /// finish before the kernel task and users are responsible for this
    /// dependency", §III-A.5).
    SourceNotPulled {
        /// The kernel task.
        kernel: String,
        /// The pull task whose device data was missing.
        pull: String,
    },
    /// A push task executed before its source pull task.
    PushBeforePull {
        /// The push task.
        push: String,
        /// The pull task.
        pull: String,
    },
    /// An empty (placeholder) task was executed without being assigned
    /// work.
    EmptyTask {
        /// The placeholder's name.
        task: String,
    },
    /// A task's user callable panicked; the run completes with this error
    /// instead of tearing down the executor.
    TaskPanicked {
        /// Name of the panicking task.
        task: String,
    },
    /// An underlying device error (out of memory, bad pointer, ...).
    Gpu(GpuError),
    /// The executor was shut down while the run was in flight.
    ExecutorShutDown,
    /// The graph was structurally modified while one of its topologies was
    /// still running.
    GraphBusy,
    /// A task's device operation failed after exhausting its retry budget
    /// (or failed with a non-retryable device error).
    TaskFailed {
        /// Name of the failing task.
        task: String,
        /// The device error that exhausted the budget.
        source: GpuError,
    },
    /// The run was cancelled via [`crate::RunFuture::cancel`].
    Cancelled,
    /// An epoch was submitted to a [`crate::Session`] that was already
    /// closed (explicitly or by dropping the handle).
    StreamClosed,
    /// A fleet submission would exceed one of the tenant's configured
    /// quotas (see [`crate::TenantConfig`]). Structured so callers can
    /// shed load or retry after budget refresh instead of hanging.
    QuotaExceeded {
        /// The tenant whose quota rejected the submission.
        tenant: String,
        /// Which quota rejected it (e.g. `"gpu_ns_budget"`).
        resource: String,
        /// Units the submission needed (resource-specific: nanoseconds
        /// of modeled GPU time for the budget quota).
        needed: u64,
        /// The configured limit, in the same units.
        limit: u64,
    },
    /// A fleet submission was rejected because the tenant's queue is at
    /// its configured bound — backpressure surfaced as a structured
    /// error rather than an unbounded queue.
    FleetSaturated {
        /// The tenant whose queue is full.
        tenant: String,
        /// Submissions already waiting in the tenant's queue.
        queued: usize,
        /// The configured queue bound.
        limit: usize,
    },
}

impl HfError {
    /// Name of the offending task, when the error is attributable to one.
    /// For the dependency errors the *dependent* task is reported (the
    /// kernel missing its pull, the push missing its pull).
    pub fn task(&self) -> Option<&str> {
        match self {
            HfError::CycleDetected { path } => path.first().map(String::as_str),
            HfError::NoGpus { task }
            | HfError::EmptyTask { task }
            | HfError::TaskPanicked { task }
            | HfError::TaskFailed { task, .. } => Some(task),
            HfError::SourceNotPulled { kernel, .. } => Some(kernel),
            HfError::PushBeforePull { push, .. } => Some(push),
            _ => None,
        }
    }

    /// The tenant a fleet admission error is attributed to
    /// ([`HfError::QuotaExceeded`] / [`HfError::FleetSaturated`]).
    pub fn tenant(&self) -> Option<&str> {
        match self {
            HfError::QuotaExceeded { tenant, .. } | HfError::FleetSaturated { tenant, .. } => {
                Some(tenant)
            }
            _ => None,
        }
    }

    /// The underlying device error, when there is one.
    pub fn gpu_cause(&self) -> Option<&GpuError> {
        match self {
            HfError::Gpu(e) | HfError::TaskFailed { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for HfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HfError::CycleDetected { path } => {
                write!(f, "task graph contains a cycle: ")?;
                for name in path {
                    write!(f, "'{name}' -> ")?;
                }
                match path.first() {
                    Some(first) => write!(f, "'{first}'"),
                    None => write!(f, "<empty>"),
                }
            }
            HfError::LintRejected { graph, diagnostics } => {
                write!(
                    f,
                    "graph '{graph}' rejected by lint policy: {} error-severity finding(s)",
                    diagnostics.len()
                )?;
                if let Some(first) = diagnostics.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            HfError::NoGpus { task } => write!(
                f,
                "task '{task}' requires a GPU but the executor has none"
            ),
            HfError::SourceNotPulled { kernel, pull } => write!(
                f,
                "kernel '{kernel}' ran before its source pull task '{pull}'; add pull.precede(kernel)"
            ),
            HfError::PushBeforePull { push, pull } => write!(
                f,
                "push '{push}' ran before its source pull task '{pull}'; add a dependency"
            ),
            HfError::EmptyTask { task } => {
                write!(f, "placeholder task '{task}' executed without assigned work")
            }
            HfError::TaskPanicked { task } => {
                write!(f, "task '{task}' panicked during execution")
            }
            HfError::Gpu(e) => write!(f, "device error: {e}"),
            HfError::ExecutorShutDown => write!(f, "executor shut down during run"),
            HfError::GraphBusy => write!(f, "graph modified while running"),
            HfError::TaskFailed { task, source } => {
                write!(f, "task '{task}' failed: {source}")
            }
            HfError::Cancelled => write!(f, "run cancelled"),
            HfError::StreamClosed => write!(f, "epoch submitted to a closed stream"),
            HfError::QuotaExceeded {
                tenant,
                resource,
                needed,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' exceeded quota '{resource}': needs {needed}, limit {limit}"
            ),
            HfError::FleetSaturated {
                tenant,
                queued,
                limit,
            } => write!(
                f,
                "fleet saturated for tenant '{tenant}': {queued} submissions queued (bound {limit})"
            ),
        }
    }
}

impl std::error::Error for HfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HfError::Gpu(e) | HfError::TaskFailed { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for HfError {
    fn from(e: GpuError) -> Self {
        HfError::Gpu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_task() {
        let e = HfError::CycleDetected {
            path: vec!["k1".into(), "k2".into()],
        };
        let s = e.to_string();
        // Full cycle in order, closed back to the start.
        assert!(s.contains("'k1' -> 'k2' -> 'k1'"), "got: {s}");
        let e = HfError::SourceNotPulled {
            kernel: "saxpy".into(),
            pull: "pull_x".into(),
        };
        let s = e.to_string();
        assert!(s.contains("saxpy") && s.contains("pull_x"));
    }

    #[test]
    fn gpu_error_wraps_with_source() {
        use std::error::Error;
        let e = HfError::from(GpuError::InvalidDevice(7));
        assert!(e.source().is_some());
    }

    #[test]
    fn lint_rejected_display_and_accessors() {
        let e = HfError::LintRejected {
            graph: "g".into(),
            diagnostics: vec!["HF002 [a, b]: unordered access".into()],
        };
        let s = e.to_string();
        assert!(s.contains("'g'") && s.contains("1 error") && s.contains("HF002"), "got: {s}");
        assert_eq!(e.task(), None);
        assert!(e.gpu_cause().is_none());
    }

    #[test]
    fn task_accessor_is_uniform() {
        assert_eq!(
            HfError::CycleDetected {
                path: vec!["a".into(), "b".into()]
            }
            .task(),
            Some("a"),
            "cycle reports its first task"
        );
        assert_eq!(HfError::NoGpus { task: "b".into() }.task(), Some("b"));
        assert_eq!(
            HfError::SourceNotPulled {
                kernel: "k".into(),
                pull: "p".into()
            }
            .task(),
            Some("k")
        );
        assert_eq!(
            HfError::PushBeforePull {
                push: "s".into(),
                pull: "p".into()
            }
            .task(),
            Some("s")
        );
        assert_eq!(HfError::EmptyTask { task: "e".into() }.task(), Some("e"));
        assert_eq!(HfError::TaskPanicked { task: "t".into() }.task(), Some("t"));
        assert_eq!(
            HfError::TaskFailed {
                task: "f".into(),
                source: GpuError::DeviceLost(1)
            }
            .task(),
            Some("f")
        );
        assert_eq!(HfError::Cancelled.task(), None);
        assert_eq!(HfError::ExecutorShutDown.task(), None);
        assert_eq!(HfError::Gpu(GpuError::ShutDown).task(), None);
    }

    #[test]
    fn gpu_cause_sees_through_task_failed() {
        let e = HfError::TaskFailed {
            task: "k".into(),
            source: GpuError::DeviceLost(2),
        };
        assert_eq!(e.gpu_cause(), Some(&GpuError::DeviceLost(2)));
        assert_eq!(HfError::Cancelled.gpu_cause(), None);
    }
}
