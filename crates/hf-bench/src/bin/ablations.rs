//! One-shot ablation summary: runs A1–A5 at small scale and prints a
//! consolidated table (the Criterion benches give precise numbers; this
//! binary gives the narrative in seconds).
//!
//! Usage: `cargo run --release -p hf-bench --bin ablations`

use hf_core::data::HostVec;
use hf_core::placement::{device_placement, PlacementPolicy};
use hf_core::{AsTask, Executor, Heteroflow};
use hf_gpu::{BuddyAllocator, CostModel, SimDuration};
use hf_sim::{simulate, Machine, SchedulerMode};
use std::time::Instant;

fn main() {
    println!("=== Heteroflow ablation summary ===\n");
    a1_placement_policies();
    a2_dedicated_workers();
    a3_memory_pool();
    a4_adaptive_sleep();
    a5_task_fusion();
}

/// A1: packing policy load balance on heterogeneous groups.
fn a1_placement_policies() {
    let g = Heteroflow::new("a1");
    for i in 0..400 {
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 1024 * (1 + i % 37)]);
        let p = g.pull(&format!("p{i}"), &x);
        let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
        k.work_units(((i % 11) + 1) as f64 * 1e5);
        p.precede(&k);
    }
    let info = g.info().expect("acyclic");
    println!("A1  device placement policy (400 skewed groups, 4 GPUs):");
    for (name, policy) in [
        ("balanced (paper)", PlacementPolicy::BalancedLoad),
        ("round-robin", PlacementPolicy::RoundRobin),
        ("random", PlacementPolicy::Random { seed: 3 }),
    ] {
        let p = device_placement(&info, 4, policy, &CostModel::default()).expect("placeable");
        let r = simulate(&info, &Machine::new(8, 4), policy, |_| SimDuration::ZERO)
            .expect("simulates");
        println!(
            "      {name:<18} imbalance {:>6.3}   modeled makespan {:>8.2} ms",
            p.imbalance(),
            r.makespan_secs * 1e3
        );
    }
    println!();
}

/// A2: dedicated GPU workers vs unified, CPU-heavy mix.
fn a2_dedicated_workers() {
    let g = Heteroflow::new("a2");
    let x: HostVec<u8> = HostVec::from_vec(vec![0; 4096]);
    for i in 0..4 {
        let p = g.pull(&format!("p{i}"), &x);
        let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
        k.work_units(1e5);
        p.precede(&k);
    }
    for i in 0..64 {
        g.host(&format!("h{i}"), || {});
    }
    let info = g.info().expect("acyclic");
    println!("A2  worker organization (64 CPU tasks + 4 light kernels, 8 cores, 2 GPUs):");
    for (name, mode) in [
        ("unified (paper)", SchedulerMode::Unified),
        ("dedicated/GPU", SchedulerMode::DedicatedGpuWorkers),
    ] {
        let m = Machine::new(8, 2).with_mode(mode);
        let r = simulate(&info, &m, PlacementPolicy::BalancedLoad, |_| {
            SimDuration::from_millis(1)
        })
        .expect("simulates");
        println!(
            "      {name:<18} makespan {:>8.2} ms   cpu util {:>5.2}",
            r.makespan_secs * 1e3,
            r.cpu_utilization
        );
    }
    println!();
}

/// A3: buddy pool vs raw allocation for pull-sized buffers.
fn a3_memory_pool() {
    let sizes: Vec<usize> = (0..2000).map(|i| 256 + (i * 977) % 65536).collect();
    let t0 = Instant::now();
    let mut b = BuddyAllocator::new(1 << 28, 256);
    for _ in 0..20 {
        let offs: Vec<u64> = sizes.iter().map(|&s| b.alloc(s).expect("fits")).collect();
        for o in offs {
            b.free(o).expect("valid");
        }
    }
    let pool = t0.elapsed();
    let t1 = Instant::now();
    let mut total = 0usize;
    for _ in 0..20 {
        let bufs: Vec<Vec<u8>> = sizes.iter().map(|&s| vec![0u8; s]).collect();
        total += bufs.iter().map(|x| x.len()).sum::<usize>();
    }
    std::hint::black_box(total);
    let raw = t1.elapsed();
    println!("A3  memory pool (40k pull-sized alloc/free cycles):");
    println!("      buddy pool (paper)  {pool:>10.2?}");
    println!(
        "      raw zeroed buffers  {raw:>10.2?}   ({:.1}x slower)",
        raw.as_secs_f64() / pool.as_secs_f64()
    );
    println!();
}

/// A4: adaptive sleep vs always-spin on a bursty workload.
fn a4_adaptive_sleep() {
    let build = || {
        let g = Heteroflow::new("a4");
        let root = g.host("root", || {});
        for i in 0..200 {
            let t = g.host(&format!("t{i}"), || {});
            root.precede(&t);
        }
        g
    };
    println!("A4  idle-worker strategy (200-task bursts, 4 workers):");
    for (name, adaptive) in [("adaptive (paper)", true), ("always-spin", false)] {
        let ex = Executor::builder(4, 0).adaptive_sleep(adaptive).build();
        let g = build();
        let t0 = Instant::now();
        for _ in 0..50 {
            ex.run(&g).wait().expect("runs");
            // Idle gap between bursts: spinning burns CPU here.
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let el = t0.elapsed();
        println!(
            "      {name:<18} wall {el:>9.2?}   sleeps {:>6}   steal success {:>5.3}",
            ex.stats().sleeps.sum(),
            ex.stats().steal_success_rate()
        );
    }
    println!();
}

/// A5: task fusion on chain-heavy graphs.
fn a5_task_fusion() {
    let build = || {
        let g = Heteroflow::new("a5");
        for lane in 0..4 {
            let d: HostVec<u64> = HostVec::from_vec(vec![1; 256]);
            let p = g.pull(&format!("p{lane}"), &d);
            let mut prev = p.as_task();
            for i in 0..24 {
                let k = g.kernel(&format!("k{lane}_{i}"), &[&p], |cfg, args| {
                    let v = args.slice_mut::<u64>(0).expect("data");
                    for t in cfg.threads() {
                        if t < v.len() {
                            v[t] = v[t].wrapping_add(1);
                        }
                    }
                });
                k.cover(256, 128);
                k.succeed(&prev);
                prev = k.as_task();
            }
            let s = g.push(&format!("s{lane}"), &p, &d);
            s.succeed(&prev);
        }
        g
    };
    println!("A5  task fusion (4 lanes x 24-kernel chains, 4 workers, 2 GPUs):");
    for (name, fusion) in [("fused (default)", true), ("per-task dispatch", false)] {
        let ex = Executor::builder(4, 2).task_fusion(fusion).build();
        let g = build();
        let t0 = Instant::now();
        for _ in 0..20 {
            ex.run(&g).wait().expect("runs");
        }
        let el = t0.elapsed();
        println!(
            "      {name:<18} wall {el:>9.2?}   fused members {:>5}",
            ex.stats().fused.sum()
        );
    }
    println!();
}
