//! Stress tests: large random mixed-kind graphs and sustained load.

use heteroflow::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A layered random graph mixing host, pull, kernel, and push tasks.
/// Every kernel increments its data once; the final check counts
/// exactly one increment per kernel layer.
#[test]
fn layered_mixed_graph() {
    const LAYERS: usize = 6;
    const WIDTH: usize = 8;
    const N: usize = 128;

    let ex = Executor::new(4, 2);
    let g = Heteroflow::new("layers");
    let host_hits = Arc::new(AtomicUsize::new(0));

    let data: Vec<HostVec<u32>> = (0..WIDTH).map(|_| HostVec::from_vec(vec![0; N])).collect();
    let pulls: Vec<_> = data
        .iter()
        .enumerate()
        .map(|(i, d)| g.pull(&format!("pull{i}"), d))
        .collect();

    let mut frontier: Vec<TaskRef> = pulls.iter().map(|p| p.as_task()).collect();
    for layer in 0..LAYERS {
        let mut next = Vec::new();
        for (i, p) in pulls.iter().enumerate() {
            let k = g.kernel(&format!("k{layer}_{i}"), &[p], |cfg, args| {
                let v = args.slice_mut::<u32>(0).expect("data");
                for t in cfg.threads() {
                    if t < v.len() {
                        v[t] += 1;
                    }
                }
            });
            k.cover(N, 64);
            k.succeed(&frontier[i]);
            // Interleave host "checkpoint" tasks between kernel layers.
            let h = g.host(&format!("h{layer}_{i}"), {
                let hits = Arc::clone(&host_hits);
                move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            });
            k.precede(&h);
            next.push(h.as_task());
        }
        frontier = next;
    }
    let pushes: Vec<_> = data
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let s = g.push(&format!("push{i}"), &pulls[i], d);
            s.succeed(&frontier[i]);
            s
        })
        .collect();
    let _ = pushes;

    ex.run(&g).wait().expect("layered graph runs");
    for d in &data {
        assert!(d.read().iter().all(|&v| v == LAYERS as u32));
    }
    assert_eq!(host_hits.load(Ordering::Relaxed), LAYERS * WIDTH);
}

/// Sustained mixed load: repeated submissions while earlier ones run.
#[test]
fn sustained_submissions() {
    let ex = Executor::new(3, 1);
    let done = Arc::new(AtomicUsize::new(0));
    let mut futs = Vec::new();
    for round in 0..20 {
        let g = Heteroflow::new(&format!("round{round}"));
        let d: HostVec<u16> = HostVec::from_vec(vec![round as u16; 64]);
        let c = Arc::clone(&done);
        let h = g.host("mark", move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        let p = g.pull("p", &d);
        let k = g.kernel("k", &[&p], |cfg, args| {
            let v = args.slice_mut::<u16>(0).expect("data");
            for t in cfg.threads() {
                if t < v.len() {
                    v[t] = v[t].wrapping_mul(3);
                }
            }
        });
        k.cover(64, 32);
        let s = g.push("s", &p, &d);
        h.precede(&p);
        p.precede(&k);
        k.precede(&s);
        futs.push((round as u16, d, ex.run(&g)));
    }
    for (round, d, f) in futs {
        f.wait().expect("runs");
        assert!(d.read().iter().all(|&v| v == round.wrapping_mul(3)));
    }
    assert_eq!(done.load(Ordering::Relaxed), 20);
}

/// Deep dependency chain through alternating CPU and GPU tasks: checks
/// the asynchronous completion path never drops a link.
#[test]
fn deep_alternating_chain() {
    const DEPTH: usize = 40;
    let ex = Executor::new(2, 2);
    let g = Heteroflow::new("deep");
    let d: HostVec<i64> = HostVec::from_vec(vec![0; 32]);
    let p = g.pull("pull", &d);
    let mut last: TaskRef = p.as_task();
    for i in 0..DEPTH {
        let k = g.kernel(&format!("k{i}"), &[&p], |cfg, args| {
            let v = args.slice_mut::<i64>(0).expect("data");
            for t in cfg.threads() {
                if t < v.len() {
                    v[t] += 1;
                }
            }
        });
        k.cover(32, 32);
        k.succeed(&last);
        last = k.as_task();
    }
    let s = g.push("push", &p, &d);
    s.succeed(&last);
    ex.run(&g).wait().expect("deep chain runs");
    assert!(d.read().iter().all(|&v| v == DEPTH as i64));
}

/// One executor hammered from several threads, each repeatedly mutating
/// its own graph and resubmitting it via `run_n` / `run` / `run_until`.
/// Checks both results and the scheduling-cache contract with counters
/// (no timing): every mutation forces exactly one re-plan, every
/// unchanged resubmission reuses the cached plan.
#[test]
fn concurrent_mutating_runs_invalidate_sched_cache() {
    const THREADS: usize = 4;
    const PHASES: usize = 5;
    const SUBMISSIONS_PER_PHASE: usize = 3;

    let ex = Arc::new(Executor::new(4, 2));
    let total = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let ex = Arc::clone(&ex);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let g = Heteroflow::new(&format!("mut{t}"));
                let mut expected = 0usize;
                for phase in 0..PHASES {
                    // Mutate: one more task — invalidates the cached plan.
                    let c = Arc::clone(&total);
                    g.host(&format!("t{phase}"), move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                    let tasks = phase + 1;

                    // Submission 1 re-plans; 2 and 3 must hit the cache.
                    ex.run_n(&g, 2).wait().unwrap();
                    expected += 2 * tasks;
                    ex.run(&g).wait().unwrap();
                    expected += tasks;
                    let mut rounds_left = 2;
                    ex.run_until(&g, move || {
                        if rounds_left == 0 {
                            true
                        } else {
                            rounds_left -= 1;
                            false
                        }
                    })
                    .wait()
                    .unwrap();
                    expected += 2 * tasks;
                }
                expected
            })
        })
        .collect();

    let expected: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total.load(Ordering::Relaxed), expected);

    // Each graph is submitted sequentially by its owning thread, so the
    // cache outcome is deterministic even though the executor is shared:
    // one miss per mutation phase, hits for every other submission.
    let s = ex.stats();
    assert_eq!(s.topo_cache_misses.sum() as usize, THREADS * PHASES);
    assert_eq!(
        s.topo_cache_hits.sum() as usize,
        THREADS * PHASES * (SUBMISSIONS_PER_PHASE - 1)
    );
}
