//! Logistic regression with gradient descent — the GPU half of the
//! per-view correlation algorithm ("a GPU-based algorithm to perform
//! logistic regression with gradient descent", §IV-A).
//!
//! The model classifies timing paths as violating/clean from structural
//! features; per-view model weights are then correlated across views.
//! [`logistic_kernel`] is a Heteroflow GPU kernel operating on pulled
//! device data; [`train_cpu`] is the bit-identical host reference used by
//! tests.

use crate::paths::TimingPath;
use hf_gpu::{KernelArgs, LaunchConfig};

/// Number of features per path sample (delay, depth, fanout-proxy, CPPR
/// credit) plus an implicit bias handled inside the weight vector.
pub const NUM_FEATURES: usize = 4;

#[inline]
fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// Builds the per-view dataset from extracted paths: a flat row-major
/// feature matrix (`n x NUM_FEATURES`, standardized) and 0/1 labels
/// ("violates under a tightened clock").
pub fn make_dataset(paths: &[TimingPath], credits: &[f32], margin: f32) -> (Vec<f32>, Vec<f32>) {
    let n = paths.len();
    let mut x = vec![0.0f32; n * NUM_FEATURES];
    let mut y = vec![0.0f32; n];
    for (i, p) in paths.iter().enumerate() {
        x[i * NUM_FEATURES] = p.delay;
        x[i * NUM_FEATURES + 1] = p.depth() as f32;
        x[i * NUM_FEATURES + 2] = p.gates.iter().map(|&g| g as f32).sum::<f32>()
            / (p.depth().max(1) as f32 * 1000.0);
        x[i * NUM_FEATURES + 3] = credits.get(i).copied().unwrap_or(0.0);
        y[i] = if p.slack < margin { 1.0 } else { 0.0 };
    }
    // Standardize each feature column (guarding zero variance).
    for fcol in 0..NUM_FEATURES {
        let mut mean = 0.0f32;
        for i in 0..n {
            mean += x[i * NUM_FEATURES + fcol];
        }
        mean /= n.max(1) as f32;
        let mut var = 0.0f32;
        for i in 0..n {
            let d = x[i * NUM_FEATURES + fcol] - mean;
            var += d * d;
        }
        let sd = (var / n.max(1) as f32).sqrt();
        for i in 0..n {
            let v = &mut x[i * NUM_FEATURES + fcol];
            // A constant feature carries no information: zero it rather
            // than amplify float noise through a tiny divisor.
            *v = if sd < 1e-6 { 0.0 } else { (*v - mean) / sd };
        }
    }
    (x, y)
}

/// Full-batch gradient-descent training, reference CPU implementation.
/// `x` is row-major `n x f`; returns `f + 1` weights (bias last).
pub fn train_cpu(x: &[f32], y: &[f32], f: usize, epochs: usize, lr: f32) -> Vec<f32> {
    let n = y.len();
    assert_eq!(x.len(), n * f, "feature matrix shape mismatch");
    let mut w = vec![0.0f32; f + 1];
    let mut grad = vec![0.0f32; f + 1];
    for _ in 0..epochs {
        grad.iter_mut().for_each(|g| *g = 0.0);
        for i in 0..n {
            let row = &x[i * f..(i + 1) * f];
            let z: f32 = row.iter().zip(&w[..f]).map(|(a, b)| a * b).sum::<f32>() + w[f];
            let err = sigmoid(z) - y[i];
            for (g, &xv) in grad[..f].iter_mut().zip(row) {
                *g += err * xv;
            }
            grad[f] += err;
        }
        let scale = lr / n.max(1) as f32;
        for (wv, g) in w.iter_mut().zip(&grad) {
            *wv -= scale * g;
        }
    }
    w
}

/// The GPU kernel: trains on device-resident data.
///
/// Device arguments (by pull-task position):
/// 0. feature matrix `x` (`n * f` f32, row-major)
/// 1. labels `y` (`n` f32)
/// 2. weights `w` (`f + 1` f32, in/out)
///
/// The launch covers `n` threads; each epoch accumulates per-sample
/// gradient contributions over the thread space, then thread 0 applies
/// the update (a grid-sync-style pattern).
pub fn logistic_kernel(
    f: usize,
    epochs: usize,
    lr: f32,
) -> impl Fn(&LaunchConfig, &mut KernelArgs<'_, '_>) + Send + Sync + 'static {
    move |cfg, args| {
        let n = args.ptr(1).len_as::<f32>();
        let (x, rest) = {
            // Split x (read) from y and w (read/write) as disjoint views.
            let (x, y, w) = args
                .slice3_mut::<f32, f32, f32>(0, 1, 2)
                .expect("disjoint device allocations");
            (x, (y, w))
        };
        let (y, w) = rest;
        assert_eq!(x.len(), n * f, "device feature shape mismatch");
        assert!(w.len() > f, "weight buffer too small");

        let mut grad = vec![0.0f32; f + 1];
        for _ in 0..epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            // SIMT loop over the launch's thread space.
            for i in cfg.threads() {
                if i >= n {
                    continue;
                }
                let row = &x[i * f..(i + 1) * f];
                let z: f32 =
                    row.iter().zip(&w[..f]).map(|(a, b)| a * b).sum::<f32>() + w[f];
                let err = sigmoid(z) - y[i];
                for (g, &xv) in grad[..f].iter_mut().zip(row) {
                    *g += err * xv;
                }
                grad[f] += err;
            }
            // "Thread 0" applies the update after the epoch barrier.
            let scale = lr / n.max(1) as f32;
            for (wv, g) in w.iter_mut().zip(&grad) {
                *wv -= scale * g;
            }
        }
    }
}

/// Model prediction for one feature row.
pub fn predict(w: &[f32], row: &[f32]) -> f32 {
    let f = row.len();
    sigmoid(row.iter().zip(&w[..f]).map(|(a, b)| a * b).sum::<f32>() + w[f])
}

/// Classification accuracy of weights `w` on `(x, y)`.
pub fn accuracy(w: &[f32], x: &[f32], y: &[f32], f: usize) -> f64 {
    let n = y.len();
    if n == 0 {
        return 1.0;
    }
    let correct = (0..n)
        .filter(|&i| {
            let p = predict(w, &x[i * f..(i + 1) * f]);
            (p >= 0.5) == (y[i] >= 0.5)
        })
        .count();
    correct as f64 / n as f64
}

/// Pearson correlation coefficient between two equal-length vectors —
/// the cross-view correlation statistic of the synchronization step.
pub fn pearson(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let ma = a.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mb = b.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let (dx, dy) = (x as f64 - ma, y as f64 - mb);
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable toy problem: y = 1 iff x0 > 0.
    fn toy(n: usize) -> (Vec<f32>, Vec<f32>) {
        let mut x = Vec::with_capacity(n * NUM_FEATURES);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let v = if i % 2 == 0 { 1.0 } else { -1.0 };
            x.extend_from_slice(&[v, 0.1 * v, -0.2, 0.05 * i as f32 / n as f32]);
            y.push(if v > 0.0 { 1.0 } else { 0.0 });
        }
        (x, y)
    }

    #[test]
    fn cpu_training_learns_separable_data() {
        let (x, y) = toy(64);
        let w = train_cpu(&x, &y, NUM_FEATURES, 300, 0.5);
        assert!(accuracy(&w, &x, &y, NUM_FEATURES) > 0.95);
        assert!(w[0] > 0.0, "x0 must get positive weight");
    }

    #[test]
    fn pearson_bounds_and_signs() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [2.0f32, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-9);
        let c = [4.0f32, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-9);
        let z = [5.0f32; 4];
        assert_eq!(pearson(&a, &z), 0.0);
    }

    #[test]
    fn dataset_standardization() {
        use crate::netlist::{Circuit, CircuitConfig};
        use crate::views::make_views;
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 300,
            ..Default::default()
        });
        let v = &make_views(1, 0.4)[0];
        let paths = crate::paths::k_critical_paths(&c, v, 50);
        let credits = vec![0.01f32; paths.len()];
        let (x, y) = make_dataset(&paths, &credits, 0.05);
        assert_eq!(x.len(), paths.len() * NUM_FEATURES);
        assert_eq!(y.len(), paths.len());
        // Column means ~0 after standardization.
        for f in 0..NUM_FEATURES {
            let mean: f32 = (0..paths.len())
                .map(|i| x[i * NUM_FEATURES + f])
                .sum::<f32>()
                / paths.len() as f32;
            assert!(mean.abs() < 1e-3, "feature {f} mean {mean}");
        }
        assert!(y.iter().all(|&v| v == 0.0 || v == 1.0));
    }
}
