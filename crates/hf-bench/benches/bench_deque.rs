//! Microbenchmarks: the Chase–Lev work-stealing deque (the executor's
//! per-worker queue) and the segmented lock-free injector (the shared
//! inbox), including its single-CAS batch operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hf_sync::{Injector, Steal, StealDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn owner_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque/owner");
    for &n in &[256usize, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let d = StealDeque::new();
            b.iter(|| {
                for i in 0..n {
                    d.push(i);
                }
                while d.pop().is_some() {}
            });
        });
    }
    g.finish();
}

fn contended_steal(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque/contended");
    g.sample_size(10);
    g.bench_function("one_thief", |b| {
        b.iter_custom(|iters| {
            let d = StealDeque::new();
            let s = d.stealer();
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let thief = std::thread::spawn(move || {
                let mut got = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    if let Steal::Success(_) = s.steal() {
                        got += 1;
                    }
                }
                got
            });
            let t0 = std::time::Instant::now();
            for i in 0..iters {
                d.push(i);
                if i % 4 == 0 {
                    let _ = d.pop();
                }
            }
            let el = t0.elapsed();
            stop.store(true, Ordering::Relaxed);
            let _ = thief.join();
            el
        });
    });
    g.finish();
}

fn injector_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("injector/single");
    for &n in &[256usize, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let q: Injector<u64> = Injector::new();
            b.iter(|| {
                for i in 0..n as u64 {
                    q.push(i);
                }
                while q.pop().is_some() {}
            });
        });
        // The executor's successor-release path: one push_batch spray,
        // drained with batched pops (the thief refill path).
        g.bench_with_input(BenchmarkId::new("batch_32", n), &n, |b, &n| {
            let q: Injector<u64> = Injector::new();
            let chunk: Vec<u64> = (0..32).collect();
            b.iter(|| {
                let mut pushed = 0;
                while pushed < n {
                    q.push_batch(&chunk);
                    pushed += chunk.len();
                }
                let mut sink = 0u64;
                while q.pop_batch(16, |v| sink = sink.wrapping_add(v)) > 0 {}
                sink
            });
        });
    }
    g.finish();
}

/// Producer thread vs consumer thread through the shared inbox — the
/// contention pattern of external submissions racing thief refills.
fn injector_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("injector/contended");
    g.sample_size(10);
    g.bench_function("spmc_batch", |b| {
        b.iter_custom(|iters| {
            let q: Arc<Injector<u64>> = Arc::new(Injector::new());
            let stop = Arc::new(AtomicBool::new(false));
            let (q2, stop2) = (Arc::clone(&q), Arc::clone(&stop));
            let consumer = std::thread::spawn(move || {
                let mut got = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    got += q2.pop_batch(16, |_| {}) as u64;
                }
                got
            });
            let chunk: Vec<u64> = (0..32).collect();
            let t0 = std::time::Instant::now();
            let mut pushed = 0u64;
            while pushed < iters {
                q.push_batch(&chunk);
                pushed += chunk.len() as u64;
            }
            let el = t0.elapsed();
            stop.store(true, Ordering::Relaxed);
            let _ = consumer.join();
            el
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    owner_push_pop,
    contended_steal,
    injector_push_pop,
    injector_contended
);
criterion_main!(benches);
