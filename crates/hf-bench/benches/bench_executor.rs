//! Microbenchmark + A4 ablation: executor task throughput, adaptive
//! sleep vs always-spin thieves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hf_core::{AsTask, Executor, Heteroflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn wide_graph(n: usize) -> (Heteroflow, Arc<AtomicUsize>) {
    let g = Heteroflow::new("wide");
    let counter = Arc::new(AtomicUsize::new(0));
    let root = g.host("root", || {});
    for i in 0..n {
        let c = Arc::clone(&counter);
        let t = g.host(&format!("t{i}"), move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        root.precede(&t);
    }
    (g, counter)
}

fn chain_graph(n: usize) -> Heteroflow {
    let g = Heteroflow::new("chain");
    let mut prev = None;
    for i in 0..n {
        let t = g.host(&format!("t{i}"), || {});
        if let Some(p) = &prev {
            t.succeed(p);
        }
        prev = Some(t);
    }
    g
}

fn throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/throughput");
    g.sample_size(10);
    for &n in &[100usize, 1000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("wide", n), &n, |b, &n| {
            let ex = Executor::new(4, 0);
            let (graph, _) = wide_graph(n);
            b.iter(|| ex.run(&graph).wait().expect("runs"));
        });
        g.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            let ex = Executor::new(4, 0);
            let graph = chain_graph(n);
            b.iter(|| ex.run(&graph).wait().expect("runs"));
        });
    }
    g.finish();
}

/// A4: the adaptive wake/sleep strategy vs always-spinning thieves.
/// Throughput should be comparable; the adaptive strategy's win is idle
/// CPU time, reported here via the sleeps/wakeups counters.
fn ablation_a4(c: &mut Criterion) {
    let mut g = c.benchmark_group("A4/adaptive_vs_spin");
    g.sample_size(10);
    let n = 500usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("adaptive", |b| {
        let ex = Executor::builder(4, 0).adaptive_sleep(true).build();
        let (graph, _) = wide_graph(n);
        b.iter(|| ex.run(&graph).wait().expect("runs"));
    });
    g.bench_function("spin", |b| {
        let ex = Executor::builder(4, 0).adaptive_sleep(false).build();
        let (graph, _) = wide_graph(n);
        b.iter(|| ex.run(&graph).wait().expect("runs"));
    });
    g.finish();

    // Print the wasted-wakeup statistics once, outside timing.
    let ex = Executor::builder(4, 0).adaptive_sleep(true).build();
    let (graph, _) = wide_graph(n);
    for _ in 0..20 {
        ex.run(&graph).wait().expect("runs");
    }
    eprintln!(
        "[A4] adaptive: tasks={} steals={} steal_rate={:.3} sleeps={} wakeups={}",
        ex.stats().tasks_executed.sum(),
        ex.stats().steals.sum(),
        ex.stats().steal_success_rate(),
        ex.stats().sleeps.sum(),
        ex.stats().wakeups.sum(),
    );
}

/// A5: GPU task fusion on/off over a chain-heavy graph (the MIS-rounds
/// pattern of Fig 8): fusion removes one scheduler round trip per chain
/// member.
fn ablation_a5(c: &mut Criterion) {
    use hf_core::data::HostVec;
    let build = || {
        let g = Heteroflow::new("chains");
        for lane in 0..4 {
            let d: HostVec<u64> = HostVec::from_vec(vec![1; 512]);
            let p = g.pull(&format!("p{lane}"), &d);
            let mut prev = p.as_task();
            for i in 0..16 {
                let k = g.kernel(&format!("k{lane}_{i}"), &[&p], |cfg, args| {
                    let v = args.slice_mut::<u64>(0).expect("data");
                    for t in cfg.threads() {
                        if t < v.len() {
                            v[t] = v[t].wrapping_add(1);
                        }
                    }
                });
                k.cover(512, 128);
                k.succeed(&prev);
                prev = k.as_task();
            }
            let s = g.push(&format!("s{lane}"), &p, &d);
            s.succeed(&prev);
        }
        g
    };
    let mut grp = c.benchmark_group("A5/fusion");
    grp.sample_size(10);
    grp.bench_function("fused", |b| {
        let ex = Executor::builder(4, 2).task_fusion(true).build();
        let g = build();
        b.iter(|| ex.run(&g).wait().expect("runs"));
    });
    grp.bench_function("unfused", |b| {
        let ex = Executor::builder(4, 2).task_fusion(false).build();
        let g = build();
        b.iter(|| ex.run(&g).wait().expect("runs"));
    });
    grp.finish();
}

fn run_n_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/run_n");
    g.sample_size(10);
    g.bench_function("run_n_100", |b| {
        let ex = Executor::new(2, 0);
        let graph = chain_graph(10);
        b.iter(|| ex.run_n(&graph, 100).wait().expect("runs"));
    });
    g.finish();
}

/// The scheduling cache: resubmitting an unchanged graph should skip the
/// freeze + placement + fusion preamble entirely. `cached` hits the cache
/// every iteration; `replanned` alternates the same graph between two
/// executors so every submission re-plans (the cache is keyed by
/// executor), isolating the preamble cost at identical task work.
fn resubmit_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/resubmit");
    g.sample_size(10);
    let n = 64usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("cached", |b| {
        let ex = Executor::new(2, 0);
        let graph = chain_graph(n);
        ex.run(&graph).wait().expect("warm-up");
        b.iter(|| ex.run(&graph).wait().expect("runs"));
    });
    g.bench_function("replanned", |b| {
        let ex1 = Executor::new(2, 0);
        let ex2 = Executor::new(2, 0);
        let graph = chain_graph(n);
        b.iter(|| {
            ex1.run(&graph).wait().expect("runs");
            ex2.run(&graph).wait().expect("runs");
        });
    });
    g.finish();

    // Counter sanity, printed once outside timing.
    let ex = Executor::new(2, 0);
    let graph = chain_graph(n);
    for _ in 0..10 {
        ex.run(&graph).wait().expect("runs");
    }
    eprintln!(
        "[cache] misses={} hits={} rounds={}",
        ex.stats().topo_cache_misses.sum(),
        ex.stats().topo_cache_hits.sum(),
        ex.stats().rounds.sum(),
    );
}

/// End-to-end tasks/sec on a task-heavy graph: a root fanning out to many
/// tiny host tasks, re-run many rounds. This is the steady-state hot path
/// (token scheduling, batched release, injector sprays) in one number.
fn tasks_per_sec(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/tasks_per_sec");
    g.sample_size(10);
    const WIDTH: usize = 256;
    const ROUNDS: usize = 20;
    g.throughput(Throughput::Elements((WIDTH as u64 + 1) * ROUNDS as u64));
    g.bench_function("wide_256x20", |b| {
        let ex = Executor::new(4, 0);
        let (graph, _) = wide_graph(WIDTH);
        b.iter(|| ex.run_n(&graph, ROUNDS).wait().expect("runs"));
    });
    let ex = Executor::new(4, 0);
    let (graph, _) = wide_graph(WIDTH);
    ex.run_n(&graph, ROUNDS).wait().expect("runs");
    eprintln!(
        "[hot-path] tasks={} injector_batches={} notify_coalesced={} steals={}",
        ex.stats().tasks_executed.sum(),
        ex.stats().injector_batches.sum(),
        ex.stats().notify_coalesced.sum(),
        ex.stats().steals.sum(),
    );
}

criterion_group!(
    benches,
    throughput,
    ablation_a4,
    ablation_a5,
    run_n_batching,
    resubmit_cache,
    tasks_per_sec
);
criterion_main!(benches);
