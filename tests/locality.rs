//! End-to-end tests for locality-aware placement: warm residency steering
//! re-placements to elide copies across mutated-graph epochs, stale
//! residency losing its pull (and never serving stale bytes), and chaos
//! runs combining `PlacementPolicy::Locality` with device loss.

use heteroflow::prelude::*;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(30);

fn locality_executor(cpus: usize, gpus: u32) -> Executor {
    Executor::builder(cpus, gpus)
        .placement_policy(PlacementPolicy::Locality)
        .build()
}

/// Warm residency survives graph mutation: each epoch bumps the builder
/// epoch (cache miss, full re-placement), yet the locality packer keeps
/// every lane on the device already holding its bytes, so all copies
/// after the first epoch elide.
#[test]
fn warm_residency_elides_across_mutated_epochs() {
    const LANES: usize = 4;
    let ex = locality_executor(2, 2);
    let g = Heteroflow::new("warm_epochs");
    let bufs: Vec<HostVec<i64>> = (0..LANES)
        .map(|i| HostVec::from_vec(vec![i as i64; (i + 1) * 1024]))
        .collect();
    for (i, b) in bufs.iter().enumerate() {
        g.pull(&format!("lane{i}"), b);
    }

    let total_bytes: u64 = (1..=LANES as u64).map(|k| k * 1024 * 8).sum();
    for epoch in 0..3 {
        ex.run(&g)
            .wait_timeout(DEADLINE)
            .expect("epoch hung")
            .expect("epoch runs");
        g.host(&format!("tick{epoch}"), || {});
    }

    let s = ex.stats().snapshot();
    assert_eq!(
        s.bytes_h2d, total_bytes,
        "every epoch after the first should elide all lane copies"
    );
    assert_eq!(s.transfers_elided, (LANES * 2) as u64);
    // Epochs 1 and 2 re-place with all four lanes warm.
    assert_eq!(s.placement_warm_hits, (LANES * 2) as u64);
    assert_eq!(s.placement_est_bytes_saved, total_bytes * 2);
}

/// Mutating the host buffer invalidates residency: the next re-placement
/// draws no warm credit for it, the copy really happens, and the pushed-
/// back bytes are the new ones — never a stale device copy.
#[test]
fn stale_residency_recopies_new_bytes() {
    const N: usize = 2048;
    let ex = locality_executor(2, 2);
    let data: HostVec<i32> = HostVec::from_vec(vec![7; N]);
    let g = Heteroflow::new("stale");
    let p = g.pull("pull", &data);
    let s = g.push("push", &p, &data);
    p.precede(&s);

    // Epoch 0: real copy up and back.
    ex.run(&g).wait_timeout(DEADLINE).expect("hung").expect("runs");
    // Epoch 1 (graph mutated, data untouched): pull elides.
    g.host("tick0", || {});
    ex.run(&g).wait_timeout(DEADLINE).expect("hung").expect("runs");
    let mid = ex.stats().snapshot();
    assert_eq!(mid.bytes_h2d, (N * 4) as u64, "warm epoch must elide");
    assert!(mid.placement_warm_hits >= 1);

    // Epoch 2: new host bytes. Residency is stale, so placement takes no
    // warm credit and the copy happens again.
    data.write().iter_mut().for_each(|v| *v = 42);
    g.host("tick1", || {});
    ex.run(&g).wait_timeout(DEADLINE).expect("hung").expect("runs");

    let end = ex.stats().snapshot();
    assert_eq!(
        end.bytes_h2d,
        2 * (N * 4) as u64,
        "stale residency must not suppress the copy"
    );
    assert_eq!(
        end.placement_warm_hits, mid.placement_warm_hits,
        "stale residency must not attract placement"
    );
    assert!(
        data.read().iter().all(|&v| v == 42),
        "push returned stale device bytes"
    );
}

/// Two-lane pull->kernel->push graph used by the chaos runs below, with a
/// known expected output.
fn run_two_lanes(ex: &Executor, seed: u64) -> bool {
    let bufs: Vec<HostVec<i32>> = (0..2).map(|_| HostVec::from_vec(vec![3; 64])).collect();
    let g = Heteroflow::new("loc_chaos");
    for (i, b) in bufs.iter().enumerate() {
        let p = g.pull(&format!("pull_{i}"), b);
        let k = g.kernel(&format!("double_{i}"), &[&p], |cfg, args| {
            let xs = args.slice_mut::<i32>(0).unwrap();
            for t in cfg.threads() {
                if t < xs.len() {
                    xs[t] *= 2;
                }
            }
        });
        k.block_x(64);
        let s = g.push(&format!("push_{i}"), &p, b);
        p.precede(&k);
        k.precede(&s);
    }
    match ex.run(&g).wait_timeout(DEADLINE) {
        None => panic!("locality chaos run hung (seed {seed})"),
        Some(Ok(())) => {
            for b in &bufs {
                assert!(
                    b.read().iter().all(|&v| v == 6),
                    "locality chaos run corrupted data (seed {seed})"
                );
            }
            true
        }
        Some(Err(e)) => {
            assert!(
                !matches!(e, HfError::Cancelled),
                "uncancelled run ended Cancelled (seed {seed}): {e}"
            );
            false
        }
    }
}

/// Locality + seeded device loss and transfer faults: every run settles
/// within the deadline with a correct result or a structured error, and
/// the clean-loss case must succeed on the survivors.
#[test]
fn chaos_locality_survives_device_loss() {
    // Deterministic half: device 1 dies after one op; the run must still
    // complete correctly via failover placement.
    let ex = locality_executor(2, 2);
    ex.gpu_runtime()
        .set_fault_plan(Some(FaultPlan::seeded(0x10ca_beef).lose_device(1, 1)));
    assert!(run_two_lanes(&ex, 0), "clean device-loss run must succeed");
    assert!(ex.stats().snapshot().devices_lost >= 1);

    // Randomized half: 16 seeded plans mixing H2D/kernel faults with
    // occasional device loss, two epochs each so failover re-placement
    // sees warm residency from the first epoch.
    let mut ok = 0u32;
    for i in 0..16u64 {
        let seed = 0x10ca_11fe_0000 + i;
        let mut plan = FaultPlan::seeded(seed)
            .fail(FaultSite::H2d, (i % 4) as f64 / 16.0)
            .fail(FaultSite::Kernel, (i % 3) as f64 / 12.0)
            .max_faults(1 + i % 4);
        if i % 2 == 0 {
            plan = plan.lose_device(((i / 2) % 2) as u32, i % 5);
        }
        let ex = Executor::builder(2, 2)
            .placement_policy(PlacementPolicy::Locality)
            .retry_policy(RetryPolicy::new(3))
            .build();
        ex.gpu_runtime().set_fault_plan(Some(plan));
        for _ in 0..2 {
            if run_two_lanes(&ex, seed) {
                ok += 1;
            }
        }
    }
    assert!(ok > 0, "no locality chaos run ever succeeded");
}
