//! Figure 9: detailed-placement runtime vs CPU/GPU counts and vs
//! iteration count.
//!
//! Reproduces both panels of Fig 9 (§IV-B): the paper places `bigblue4`
//! (2.2M cells) with the matching-based algorithm, reporting 58.41 s at
//! 1c/1g vs 14.02 s at 40c/1g, saturation ≈ 20 cores, and *no* benefit
//! from extra GPUs (14.02 s → 13.61 s for 1 → 4 GPUs) — "this property is
//! generally true for most optimization algorithms in VLSI CAD, as they
//! are often irregular and dependent".
//!
//! Method mirrors `fig6_timing`: the real flattened Fig 8 task graph is
//! built at a scaled size, the CPU task bodies (partition, matching,
//! apply, prepare) are executed and timed on this machine, costs scale to
//! bigblue4 size, and the discrete-event model replays the graph on
//! virtual machines. The GPU MIS kernels are costed at DREAMPlace's
//! reported 40x speedup over one CPU core.
//!
//! Usage:
//!   cargo run --release -p hf-bench --bin fig9_placement
//!     [--cells 4000] [--iters 10] [--matchers 32] [--window 6]
//!     [--dedicated]   (A2 ablation: one worker bound per GPU)
//!     [--sweep cores|iters|both] [--json]

use hf_bench::{print_matrix, Args, NameCosts, Row};
use hf_core::placement::PlacementPolicy;
use hf_core::GraphInfo;
use hf_gpu::{CostModel, SimDuration};
use hf_place::graph::{build_placement_graph, GraphConfig};
use hf_place::mis::{make_priorities, mis_cpu};
use hf_place::partition::partition_windows;
use hf_place::{hungarian, PlacementConfig, PlacementDb};
use hf_sim::{simulate, Machine, SchedulerMode};

/// Paper's bigblue4 size, for cost scaling.
const BIGBLUE4_CELLS: f64 = 2_200_000.0;
/// Core counts of the Fig 9 upper panel.
const CORE_SWEEP: [usize; 6] = [1, 8, 16, 24, 32, 40];
/// GPU counts of the Fig 9 upper panel.
const GPU_SWEEP: [u32; 4] = [1, 2, 3, 4];
/// Iteration counts of the Fig 9 lower panel.
const ITER_SWEEP: [usize; 5] = [5, 10, 20, 35, 50];

struct Setup {
    db_cfg: PlacementConfig,
    costs: NameCosts,
    cost_model: CostModel,
    graph_cfg: GraphConfig,
    mode: SchedulerMode,
}

fn build_info(setup: &Setup, iterations: usize) -> GraphInfo {
    let db = PlacementDb::synthesize(&setup.db_cfg);
    let cfg = GraphConfig {
        iterations,
        ..setup.graph_cfg
    };
    let (g, _run) = build_placement_graph(db, cfg);
    g.info().expect("acyclic by construction")
}

fn seconds(info: &GraphInfo, setup: &Setup, cores: usize, gpus: u32) -> f64 {
    let m = Machine::new(cores, gpus)
        .with_cost(setup.cost_model)
        .with_mode(setup.mode);
    let r = simulate(info, &m, PlacementPolicy::BalancedLoad, setup.costs.for_graph(info))
        .expect("valid graph and machine");
    r.makespan_secs
}

fn main() {
    let args = Args::parse();
    let cells: usize = args.get("cells", 4_000);
    let iters: usize = args.get("iters", 10);
    let matchers: usize = args.get("matchers", 32);
    let window: usize = args.get("window", 6);
    let sweep = args.get_str("sweep").unwrap_or("both").to_string();
    let mode = if args.flag("dedicated") {
        SchedulerMode::DedicatedGpuWorkers
    } else {
        SchedulerMode::Unified
    };

    eprintln!("[fig9] synthesizing placement ({cells} cells) ...");
    let db_cfg = PlacementConfig {
        num_cells: cells,
        num_nets: cells,
        ..Default::default()
    };
    let db = PlacementDb::synthesize(&db_cfg);
    let scale = BIGBLUE4_CELLS / cells as f64;

    // --- Calibrate CPU task costs by running the real step bodies. ---
    eprintln!("[fig9] calibrating host-task costs ...");
    let (adj, adj_cost) = hf_sim::measure(|| db.conflict_adjacency());
    let (offsets, neighbors) = adj;
    let priorities = make_priorities(cells, 0xD1CE);
    // MIS on one CPU core (the DREAMPlace baseline for the 40x claim).
    let (states, mis_cpu_cost) = hf_sim::measure(|| mis_cpu(&offsets, &neighbors, &priorities));
    let (windows, part_cost) = hf_sim::measure(|| partition_windows(&db, &states, window));
    // One matcher's share of the windows.
    let windows_per_matcher = windows.len().div_ceil(matchers.max(1));
    let (_, match_cost) = hf_sim::measure(|| {
        for w in windows.iter().take(windows_per_matcher) {
            let slots: Vec<(u32, u32)> = w
                .iter()
                .map(|&c| (db.cells[c as usize].x, db.cells[c as usize].y))
                .collect();
            let cost: Vec<Vec<u64>> = w
                .iter()
                .map(|&c| slots.iter().map(|&(x, y)| db.cell_cost_at(c, x, y)).collect())
                .collect();
            std::hint::black_box(hungarian(&cost));
        }
    });
    let (_, apply_cost) = hf_sim::measure(|| std::hint::black_box(db.total_hpwl()));
    let (_, prep_cost) = hf_sim::measure(|| std::hint::black_box(make_priorities(cells, 1)));

    let s = |d: SimDuration, factor: f64| SimDuration::from_secs_f64(d.as_secs_f64() * factor);
    let costs = NameCosts::new()
        .set("prepare", s(prep_cost, scale))
        .set("partition", s(part_cost, scale))
        .set("match", s(match_cost, scale))
        .set("apply", s(apply_cost, scale));
    let _ = adj_cost; // adjacency built once outside the graph

    // GPU MIS rounds: the whole per-iteration MIS (all rounds) runs 40x
    // faster than one CPU core (DREAMPlace's reported speedup). Each
    // round kernel declares `cells` work units; with R rounds per
    // iteration, set throughput so R rounds take mis_cpu/40.
    let graph_cfg = GraphConfig {
        iterations: iters,
        window_cap: window,
        matchers,
        mis_rounds: 0,
        seed: 0xD1CE,
    };
    let rounds = (usize::BITS - cells.leading_zeros()) as usize + 4;
    let mis_gpu_total = mis_cpu_cost.as_secs_f64() * scale / 40.0;
    let per_round = mis_gpu_total / (2.0 * rounds as f64); // select+commit
    let cost_model = CostModel {
        kernel_units_per_sec: cells as f64 / per_round.max(1e-9),
        ..CostModel::default()
    };
    eprintln!(
        "[fig9] partition={:.1}ms match={:.1}ms apply={:.1}ms (scaled); MIS gpu/iter={:.1}ms",
        part_cost.as_secs_f64() * scale * 1e3,
        match_cost.as_secs_f64() * scale * 1e3,
        apply_cost.as_secs_f64() * scale * 1e3,
        mis_gpu_total * 1e3,
    );

    let setup = Setup {
        db_cfg,
        costs,
        cost_model,
        graph_cfg,
        mode,
    };

    let mut json = serde_json::Map::new();

    // --- Upper panel: runtime vs cores, one series per GPU count. ---
    if sweep == "cores" || sweep == "both" {
        eprintln!("[fig9] building {iters}-iteration graph and sweeping cores x gpus ...");
        let info = build_info(&setup, iters);
        let mut rows = Vec::new();
        for &g in &GPU_SWEEP {
            let values: Vec<f64> = CORE_SWEEP
                .iter()
                .map(|&c| seconds(&info, &setup, c, g))
                .collect();
            rows.push(Row {
                label: format!("{g} GPU{}", if g > 1 { "s" } else { "" }),
                values,
            });
        }
        print_matrix(
            &format!("Fig 9 (upper): runtime [s] vs cores, {iters} iterations{}",
                if args.flag("dedicated") { " (dedicated-GPU-worker baseline)" } else { "" }),
            "cores",
            &CORE_SWEEP.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
            &rows,
            "",
        );
        let t_1c1g = rows[0].values[0];
        let t_40c1g = rows[0].values[CORE_SWEEP.len() - 1];
        let t_40c4g = rows[3].values[CORE_SWEEP.len() - 1];
        println!(
            "\n1c/1g: {t_1c1g:.2}s;  40c/1g: {t_40c1g:.2}s;  40c/4g: {t_40c4g:.2}s  \
             (paper: 58.41s, 14.02s, 13.61s — extra GPUs buy ~nothing)"
        );
        json.insert(
            "upper".into(),
            serde_json::json!(rows
                .iter()
                .map(|r| serde_json::json!({"label": r.label, "seconds": r.values}))
                .collect::<Vec<_>>()),
        );
    }

    // --- Lower panel: runtime vs problem size (iterations). ---
    if sweep == "iters" || sweep == "both" {
        eprintln!("[fig9] sweeping iteration count ...");
        let infos: Vec<(usize, GraphInfo)> = ITER_SWEEP
            .iter()
            .map(|&i| (i, build_info(&setup, i)))
            .collect();
        let mut rows = Vec::new();
        for &c in &[1usize, 8, 40] {
            rows.push(Row {
                label: format!("{c} cores, 4 GPUs"),
                values: infos.iter().map(|(_, i)| seconds(i, &setup, c, 4)).collect(),
            });
        }
        for &g in &[1u32, 4] {
            rows.push(Row {
                label: format!("40 cores, {g} GPU{}", if g > 1 { "s" } else { "" }),
                values: infos.iter().map(|(_, i)| seconds(i, &setup, 40, g)).collect(),
            });
        }
        print_matrix(
            "Fig 9 (lower): runtime [s] vs problem size (iterations)",
            "iters",
            &ITER_SWEEP.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
            &rows,
            "",
        );
        if rows.len() >= 3 {
            println!(
                "\n5 iterations under 4 GPUs: {:.2}s at 1 core vs {:.2}s at 40 cores (paper: 6.35s vs 1.44s)",
                rows[0].values[0], rows[2].values[0]
            );
        }
        json.insert(
            "lower".into(),
            serde_json::json!(rows
                .iter()
                .map(|r| serde_json::json!({"label": r.label, "seconds": r.values}))
                .collect::<Vec<_>>()),
        );
    }

    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Object(json)).expect("serializable")
        );
    }
}
