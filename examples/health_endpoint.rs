//! Live runtime-health walkthrough: flight recorder + watchdog + HTTP
//! endpoint, driven through a healthy phase and a chaos phase.
//!
//! Wires the full health layer onto an executor:
//!
//! 1. a [`FlightRecorder`] observer captures every task-lifecycle event
//!    (submit → ready → started → dispatched → finished/retried) into a
//!    lock-free ring;
//! 2. a [`Watchdog`] monitor thread pumps the recorder, watching armed
//!    runs for no-progress windows and stragglers;
//! 3. a [`HealthServer`] exposes `/metrics` (Prometheus), `/health`
//!    (watchdog verdict), `/runs` and `/flight` (flight-recorder JSON)
//!    on a local port.
//!
//! The workload runs a healthy warm-up, then a chaos phase: a seeded
//! `FaultPlan` injects a kernel stall (tripping the watchdog) and a
//! whole-device loss mid-run (exercising retry/failover, visible in the
//! black box). The example scrapes its own endpoint and writes the
//! artifacts into the output directory:
//!
//! * `metrics_live.prom`     — live `/metrics` scrape (populated
//!   `hf_task_queue_delay_nanos` buckets, executor gauges).
//! * `health.json`           — final `/health` document (stall →
//!   recovered event ladder).
//! * `runs.json`             — `/runs` summaries.
//! * `flight_recorder.json`  — the full flight dump ("black box").
//!
//! Run:   `cargo run --example health_endpoint [-- OUTDIR]`
//! Check: `cargo run --example health_endpoint -- OUTDIR --check`
//! validates the artifacts against the flight-recorder schema
//! (`docs/flight_recorder.schema.json` invariants) and exits non-zero on
//! violation — CI runs this mode.

use heteroflow::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(30);

fn doubling_graph(name: &str, bufs: &[HostVec<i32>]) -> Heteroflow {
    let g = Heteroflow::new(name);
    for (i, b) in bufs.iter().enumerate() {
        let p = g.pull(&format!("pull_{i}"), b);
        let k = g.kernel(&format!("double_{i}"), &[&p], |cfg, args| {
            let xs = args.slice_mut::<i32>(0).unwrap();
            for t in cfg.threads() {
                if t < xs.len() {
                    xs[t] *= 2;
                }
            }
        });
        k.block_x(64);
        let s = g.push(&format!("push_{i}"), &p, b);
        p.precede(&k);
        k.precede(&s);
    }
    assert!(g.analyze().is_clean(), "lint:\n{}", g.analyze().render_text());
    g
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect health endpoint");
    write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    out.split_once("\r\n\r\n")
        .expect("well-formed response")
        .1
        .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let outdir = args
        .iter()
        .find(|a| *a != "--check")
        .cloned()
        .unwrap_or_else(|| ".".into());
    std::fs::create_dir_all(&outdir).expect("create output dir");

    // ── Wire the health layer ──────────────────────────────────────────
    let recorder = FlightRecorder::shared();
    recorder.set_blackbox_dir(Some(std::path::PathBuf::from(&outdir)));
    let executor = Arc::new(
        Executor::builder(4, 2)
            .retry_policy(RetryPolicy::new(3))
            .observer(recorder.clone())
            .build(),
    );
    let watchdog = Watchdog::spawn(
        recorder.clone(),
        WatchdogConfig {
            poll: Duration::from_millis(5),
            warn_after: Duration::from_millis(40),
            stall_after: Duration::from_millis(120),
            hang_after: Duration::from_secs(3600),
            ..WatchdogConfig::default()
        },
    );
    let hub = HealthHub::new(recorder.clone());
    hub.set_watchdog(watchdog.clone());
    let ex_for_scrape = Arc::clone(&executor);
    hub.add_collector(move |reg| {
        reg.collect_executor(&ex_for_scrape.snapshot());
        reg.collect_gpu(ex_for_scrape.gpu_runtime());
    });
    let server = HealthServer::bind("127.0.0.1:0", hub).expect("bind endpoint");
    println!("health endpoint live at http://{}", server.addr());

    // ── Phase 1: healthy workload ──────────────────────────────────────
    let bufs: Vec<HostVec<i32>> = (0..2).map(|_| HostVec::from_vec(vec![1; 256])).collect();
    for round in 0..4 {
        let g = doubling_graph(&format!("healthy_{round}"), &bufs);
        let fut = executor.run(&g);
        watchdog.arm(&fut, &format!("healthy_{round}"));
        fut.wait_timeout(DEADLINE)
            .expect("healthy run hung")
            .expect("healthy run failed");
    }
    println!(
        "healthy phase: {} lifecycle events recorded, verdict {}",
        recorder.events_recorded(),
        watchdog.verdict()
    );

    // ── Phase 2: chaos — injected stall, then device loss + failover ───
    executor.gpu_runtime().set_fault_plan(Some(
        FaultPlan::seeded(42)
            .stall(FaultSite::Kernel, Duration::from_millis(400), 1.0)
            .max_stalls(1)
            .lose_device(1, 1),
    ));
    let g = doubling_graph("chaos", &bufs);
    let fut = executor.run(&g);
    watchdog.arm(&fut, "chaos");
    // Scrape /health while the stall is wedging the run.
    let mut degraded_seen = String::new();
    while !fut.is_done() {
        let body = http_get(server.addr(), "/health");
        if body.contains("\"stall\"") || body.contains("\"warn\"") {
            degraded_seen = body;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    fut.wait_timeout(DEADLINE)
        .expect("chaos run hung")
        .expect("chaos run failed despite retry/failover");
    // Let the watchdog observe completion (it polls; recovery lands a
    // few ticks after the run resolves).
    let settle = std::time::Instant::now() + Duration::from_secs(5);
    while watchdog.verdict() != HealthVerdict::Healthy && std::time::Instant::now() < settle {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "chaos phase: {} stalls injected, {} devices lost, verdict now {}",
        executor.gpu_runtime().stalls_injected(),
        executor.gpu_runtime().lost_devices().len(),
        watchdog.verdict()
    );

    // ── Scrape + write artifacts ───────────────────────────────────────
    let metrics = http_get(server.addr(), "/metrics");
    let health = http_get(server.addr(), "/health");
    let runs = http_get(server.addr(), "/runs");
    let flight = http_get(server.addr(), "/flight");
    let w = |name: &str, body: &str| {
        std::fs::write(format!("{outdir}/{name}"), body).expect("write artifact");
    };
    w("metrics_live.prom", &metrics);
    w("health.json", &health);
    w("runs.json", &runs);
    w("flight_recorder.json", &flight);
    println!("artifacts written to {outdir}/");

    if !check {
        return;
    }

    // ── Schema / invariant validation (CI mode) ────────────────────────
    let mut failures: Vec<String> = Vec::new();
    let mut ensure = |ok: bool, what: &str| {
        if !ok {
            failures.push(what.to_string());
        }
    };

    // /metrics: populated attribution buckets and executor gauges.
    ensure(
        metrics.contains("hf_task_queue_delay_nanos_bucket{le=\""),
        "metrics: hf_task_queue_delay_nanos _bucket lines present",
    );
    ensure(
        metrics.contains("hf_task_queue_delay_nanos_bucket{le=\"+Inf\"}"),
        "metrics: +Inf bucket present",
    );
    ensure(
        metrics
            .lines()
            .any(|l| l.starts_with("hf_task_exec_nanos_count") && !l.ends_with(" 0")),
        "metrics: exec histogram populated",
    );
    ensure(
        metrics.contains("hf_executor_inflight_tasks"),
        "metrics: inflight gauge exported",
    );
    ensure(
        metrics.contains("hf_executor_queue_depth"),
        "metrics: queue-depth gauge exported",
    );

    // /health: the stall was visible live, and the ladder recovered.
    ensure(
        !degraded_seen.is_empty(),
        "health: degraded verdict observed live during the stall",
    );
    let hv = serde_json::from_str(&health).expect("valid /health JSON");
    let kinds: Vec<String> = hv
        .get("events")
        .and_then(|e| e.as_array())
        .map(|a| {
            a.iter()
                .filter_map(|e| e.get("kind").and_then(|k| k.as_str()).map(String::from))
                .collect()
        })
        .unwrap_or_default();
    ensure(kinds.iter().any(|k| k == "stall"), "health: stall event recorded");
    ensure(
        kinds.iter().any(|k| k == "recovered"),
        "health: recovery event recorded",
    );

    // flight_recorder.json against docs/flight_recorder.schema.json
    // invariants: schema tag, runs with ids/graphs, ordered events with
    // known phases, terminal run_end per completed run.
    let fv = serde_json::from_str(&flight).expect("valid flight JSON");
    ensure(
        fv.get("schema").and_then(|s| s.as_str()) == Some("hf-flight-recorder-v1"),
        "flight: schema tag",
    );
    let known_phases = [
        "run_start",
        "ready",
        "started",
        "dispatched",
        "finished",
        "failed",
        "retried",
        "failover",
        "run_end",
    ];
    let runs_arr = fv.get("runs").and_then(|r| r.as_array()).cloned().unwrap_or_default();
    ensure(runs_arr.len() >= 2, "flight: healthy + chaos runs retained");
    for run in &runs_arr {
        let id = run.get("run_id").and_then(|x| x.as_u64()).unwrap_or(0);
        ensure(id > 0, "flight: run_id present and nonzero");
        ensure(
            run.get("graph").and_then(|x| x.as_str()).is_some(),
            "flight: graph name present",
        );
        let events = run.get("events").and_then(|e| e.as_array()).cloned().unwrap_or_default();
        ensure(!events.is_empty(), "flight: run has events");
        let mut last_t = 0u64;
        for e in &events {
            let phase = e.get("phase").and_then(|p| p.as_str()).unwrap_or("?");
            ensure(
                known_phases.contains(&phase),
                "flight: event phase is a known value",
            );
            let t = e.get("t_ns").and_then(|x| x.as_u64()).unwrap_or(0);
            ensure(t >= last_t, "flight: events are time-ordered");
            last_t = t;
        }
        if run.get("ok").map(|o| !matches!(o, serde_json::Value::Null)).unwrap_or(false) {
            ensure(
                events.last().and_then(|e| e.get("phase")).and_then(|p| p.as_str())
                    == Some("run_end"),
                "flight: completed run ends with run_end",
            );
        }
    }
    // The chaos black box shows dispatch → fault → re-dispatch.
    let chaos = runs_arr.iter().find(|r| {
        r.get("graph").and_then(|g| g.as_str()) == Some("chaos")
    });
    ensure(chaos.is_some(), "flight: chaos run retained");
    if let Some(chaos) = chaos {
        let events = chaos.get("events").and_then(|e| e.as_array()).cloned().unwrap_or_default();
        let has = |p: &str| events.iter().any(|e| e.get("phase").and_then(|x| x.as_str()) == Some(p));
        ensure(has("dispatched"), "flight: chaos run shows dispatch");
        ensure(
            has("failed") || has("retried") || has("failover"),
            "flight: chaos run shows the injected fault",
        );
        ensure(
            events.iter().any(|e| {
                e.get("phase").and_then(|x| x.as_str()) == Some("finished")
                    && e.get("ok").and_then(|o| o.as_bool()) == Some(true)
            }),
            "flight: chaos run shows recovery to a successful finish",
        );
    }

    // /runs: parses, and every summary carries an id and graph.
    let rv = serde_json::from_str(&runs).expect("valid /runs JSON");
    let summaries = rv.as_array().cloned().unwrap_or_default();
    ensure(!summaries.is_empty(), "runs: summaries present");
    for s in &summaries {
        ensure(
            s.get("run_id").and_then(|x| x.as_u64()).unwrap_or(0) > 0,
            "runs: summary has run_id",
        );
    }

    if failures.is_empty() {
        println!("check OK: all health-endpoint invariants hold");
    } else {
        eprintln!("check FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
