//! Observer-disabled fast path: with a flight recorder *installed but
//! disabled*, the executor emits zero lifecycle events and adds no
//! per-task allocation over running with no observer at all.
//!
//! A counting global allocator measures whole-process allocations around
//! identical workloads. Lifecycle emission allocates at least one
//! `Arc<str>` name per event and several events per task, so a leak of
//! emission past the `is_active` gate shows up as thousands of extra
//! allocations on a 512-task run — far above scheduler noise.

use heteroflow::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const TASKS: usize = 512;

/// Serializes the tests: both measure the process-wide allocation
/// counter, so concurrent runs would pollute each other's deltas.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn host_graph(name: &str) -> Heteroflow {
    let g = Heteroflow::new(name);
    for i in 0..TASKS {
        g.host(&format!("t{i}"), || {
            std::hint::black_box(0u64);
        });
    }
    g
}

/// Allocations during one cached re-run of `g` on `ex` (min of 3, to
/// shave scheduler noise).
fn measure(ex: &Executor, g: &Heteroflow) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCS.load(Ordering::SeqCst);
        ex.run(g).wait().expect("runs");
        best = best.min(ALLOCS.load(Ordering::SeqCst) - before);
    }
    best
}

#[test]
fn disabled_recorder_adds_no_events_and_no_allocation() {
    let _guard = SERIAL.lock().unwrap();
    // Baseline: no observer installed at all.
    let ex_base = Executor::new(2, 0);
    let g_base = host_graph("fastpath_base");
    ex_base.run(&g_base).wait().expect("warmup"); // freeze + place once
    let baseline = measure(&ex_base, &g_base);

    // Same workload with a disabled flight recorder installed.
    let recorder = FlightRecorder::shared();
    recorder.set_enabled(false);
    let ex_rec = Executor::builder(2, 0).observer(recorder.clone()).build();
    let g_rec = host_graph("fastpath_rec");
    ex_rec.run(&g_rec).wait().expect("warmup");
    let with_disabled = measure(&ex_rec, &g_rec);

    assert_eq!(
        recorder.events_recorded(),
        0,
        "disabled recorder must see zero lifecycle events"
    );
    assert!(recorder.summaries().is_empty());

    // Emission would cost >= 3 allocations per task (Arc'd name per
    // event, several events per task); allow generous scheduler noise
    // well below that.
    let budget = baseline + (TASKS as u64);
    assert!(
        with_disabled <= budget,
        "disabled-recorder run allocated {with_disabled}, baseline {baseline} \
         (budget {budget}) — lifecycle emission is leaking past the is_active gate"
    );
}

/// Flipping the recorder on makes the same executor emit — the gate is
/// the recorder's enabled flag, not installation time.
#[test]
fn enabling_recorder_turns_emission_on() {
    let _guard = SERIAL.lock().unwrap();
    let recorder = FlightRecorder::shared();
    recorder.set_enabled(false);
    let ex = Executor::builder(2, 0).observer(recorder.clone()).build();
    let g = host_graph("fastpath_toggle");
    ex.run(&g).wait().expect("runs");
    assert_eq!(recorder.events_recorded(), 0);

    recorder.set_enabled(true);
    ex.run(&g).wait().expect("runs");
    // RunStart/RunEnd plus per-task ready/started/finished.
    assert!(
        recorder.events_recorded() >= (TASKS as u64) * 3,
        "enabled recorder captures lifecycle events, got {}",
        recorder.events_recorded()
    );
}
