//! Parameter sweeps over (cores, gpus) grids — the shape of the paper's
//! Figure 6 and Figure 9 experiments.

use crate::des::simulate;
use crate::machine::{Machine, SchedulerMode};
use crate::result::SimResult;
use hf_core::placement::PlacementPolicy;
use hf_core::{GraphInfo, HfError};
use hf_gpu::{CostModel, SimDuration};
use serde::Serialize;

/// One point of a hardware sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Cores simulated.
    pub cores: usize,
    /// GPUs simulated.
    pub gpus: u32,
    /// The simulated execution.
    pub result: SimResult,
}

/// Simulates `info` at every `(cores, gpus)` combination.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    info: &GraphInfo,
    cores: &[usize],
    gpus: &[u32],
    cost: CostModel,
    mode: SchedulerMode,
    policy: PlacementPolicy,
    host_cost: impl Fn(usize) -> SimDuration + Copy,
) -> Result<Vec<SweepPoint>, HfError> {
    let mut out = Vec::with_capacity(cores.len() * gpus.len());
    for &g in gpus {
        for &c in cores {
            let m = Machine::new(c, g).with_cost(cost).with_mode(mode);
            let result = simulate(info, &m, policy, host_cost)?;
            out.push(SweepPoint {
                cores: c,
                gpus: g,
                result,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_core::Heteroflow;

    #[test]
    fn sweep_covers_grid_monotonically() {
        let g = Heteroflow::new("fan");
        for i in 0..32 {
            g.host(&format!("t{i}"), || {});
        }
        let info = g.info().unwrap();
        let pts = sweep(
            &info,
            &[1, 2, 4, 8],
            &[0],
            CostModel::default(),
            SchedulerMode::Unified,
            PlacementPolicy::BalancedLoad,
            |_| SimDuration::from_millis(1),
        )
        .unwrap();
        assert_eq!(pts.len(), 4);
        // More cores never increases makespan for independent tasks.
        for w in pts.windows(2) {
            assert!(w[1].result.makespan_secs <= w[0].result.makespan_secs + 1e-12);
        }
    }
}
