//! Property-based tests of the discrete-event model.

use hf_core::placement::PlacementPolicy;
use hf_core::Heteroflow;
use hf_gpu::SimDuration;
use hf_sim::{simulate, simulate_traced, Machine};
use proptest::prelude::*;

/// Random layered host-task DAG (acyclic by construction).
fn random_graph(n: usize, seed: &[u8]) -> hf_core::GraphInfo {
    let g = Heteroflow::new("prop");
    let tasks: Vec<_> = (0..n).map(|i| g.host(&format!("t{i}"), || {})).collect();
    let mut k = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let b = seed[k % seed.len()];
            k += 1;
            if b.is_multiple_of(4) {
                tasks[i].precede(&tasks[j]);
            }
        }
    }
    g.info().expect("acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Classic makespan bounds hold for every random DAG, cost vector,
    /// and core count: CP <= makespan and work/C <= makespan <= work;
    /// and the schedule itself is dependency-consistent.
    #[test]
    fn makespan_bounds_and_valid_schedule(
        n in 2usize..20,
        seed in proptest::collection::vec(any::<u8>(), 8..48),
        costs in proptest::collection::vec(1u64..50, 20),
        cores in 1usize..8,
    ) {
        let info = random_graph(n, &seed);
        let cost_of = |id: usize| SimDuration::from_micros(costs[id % costs.len()]);
        let (result, spans) = simulate_traced(
            &info,
            &Machine::new(cores, 0),
            PlacementPolicy::BalancedLoad,
            cost_of,
        ).expect("simulates");

        let total: u64 = (0..n).map(|i| cost_of(i).as_nanos()).sum();
        let makespan = result.makespan().as_nanos();

        // Work conservation and bounds.
        prop_assert_eq!(result.cpu_busy_secs, total as f64 / 1e9);
        prop_assert!(makespan <= total, "makespan beyond serial time");
        prop_assert!(makespan * cores as u64 >= total, "overpacked cores");

        // Critical-path lower bound: longest cost-weighted chain.
        let mut cp = vec![0u64; n];
        // Nodes are created in topological-compatible order (edges i<j).
        for i in 0..n {
            cp[i] += cost_of(i).as_nanos();
            for &s in &info.nodes[i].successors {
                cp[s] = cp[s].max(cp[i]);
            }
        }
        let cp_bound = cp.iter().copied().max().unwrap_or(0);
        prop_assert!(
            makespan >= cp_bound,
            "makespan {} below critical path {}",
            makespan,
            cp_bound
        );

        // Dependency consistency of the emitted schedule.
        let mut span_of = vec![(0u64, 0u64); n];
        for s in &spans {
            span_of[s.node] = (s.start_ns, s.finish_ns);
        }
        for (u, node) in info.nodes.iter().enumerate() {
            for &v in &node.successors {
                prop_assert!(span_of[v].0 >= span_of[u].1, "edge {}->{} broken", u, v);
            }
        }
    }

    /// Multi-core runs never exceed the single-core serial time, and
    /// core-count changes stay within Graham's list-scheduling bound
    /// (strict monotonicity does not hold for list scheduling — Graham
    /// anomalies — but 2x is guaranteed).
    #[test]
    fn graham_bounds_across_core_counts(
        n in 2usize..16,
        seed in proptest::collection::vec(any::<u8>(), 8..32),
    ) {
        let info = random_graph(n, &seed);
        let run = |cores: usize| {
            simulate(
                &info,
                &Machine::new(cores, 0),
                PlacementPolicy::BalancedLoad,
                |_| SimDuration::from_micros(100),
            ).expect("simulates").makespan_secs
        };
        let serial = run(1);
        let mut prev = serial;
        for cores in [2usize, 4, 8] {
            let t = run(cores);
            prop_assert!(t <= serial + 1e-12, "cores={} beat by serial", cores);
            prop_assert!(t <= prev * 2.0 + 1e-12, "anomaly beyond Graham bound");
            prev = t;
        }
    }
}
